"""Workload-generator tests (SDET, scientific, contention, multiprog)."""


from repro.core.majors import Major
from repro.workloads import (
    run_contention,
    run_multiprog,
    run_scientific,
    run_sdet,
)
from repro.workloads.sdet import COMMANDS, DEFAULT_COMMANDS_PER_SCRIPT


class TestSdet:
    def test_run_completes_and_counts_scripts(self):
        kernel, fac, res = run_sdet(2, scripts_per_cpu=1, commands_per_script=2)
        assert res.scripts == 2
        assert res.elapsed_cycles > 0
        assert res.throughput > 0
        assert len(res.utilization) == 2

    def test_all_script_processes_exit(self):
        kernel, fac, res = run_sdet(2, scripts_per_cpu=1, commands_per_script=2)
        scripts = [p for p in kernel.processes.values()
                   if p.name.startswith("sdet_script")]
        assert scripts and all(p.exited for p in scripts)

    def test_commands_become_child_processes(self):
        kernel, fac, res = run_sdet(1, scripts_per_cpu=1, commands_per_script=3)
        children = [p for p in kernel.processes.values()
                    if "." in p.name and p.pid >= 2]
        assert len(children) == 3

    def test_deterministic_given_seed(self):
        _, _, a = run_sdet(2, scripts_per_cpu=1, commands_per_script=2, seed=42)
        _, _, b = run_sdet(2, scripts_per_cpu=1, commands_per_script=2, seed=42)
        assert a.elapsed_cycles == b.elapsed_cycles
        assert a.trace_events == b.trace_events

    def test_seed_changes_run(self):
        _, _, a = run_sdet(2, scripts_per_cpu=1, commands_per_script=4, seed=1)
        _, _, b = run_sdet(2, scripts_per_cpu=1, commands_per_script=4, seed=2)
        assert a.elapsed_cycles != b.elapsed_cycles

    def test_tracing_modes(self):
        _, fac_on, on = run_sdet(2, scripts_per_cpu=1, tracing="on")
        _, fac_masked, masked = run_sdet(2, scripts_per_cpu=1, tracing="masked")
        _, fac_off, off = run_sdet(2, scripts_per_cpu=1, tracing="off")
        assert on.trace_events > 0
        assert masked.trace_events < on.trace_events / 10
        assert off.trace_events == 0
        assert fac_off is None

    def test_scaling_shape_fine_vs_coarse(self):
        """The Figure 3 contrast in miniature: at 8 CPUs the K42 config
        clearly outperforms the coarse-locked one."""
        _, _, fine = run_sdet(8, scripts_per_cpu=2, commands_per_script=3)
        _, _, coarse = run_sdet(8, scripts_per_cpu=2, commands_per_script=3,
                                coarse_locked=True)
        assert fine.throughput > coarse.throughput * 1.2

    def test_near_linear_speedup_small_counts(self):
        _, _, one = run_sdet(1, scripts_per_cpu=2, commands_per_script=3)
        _, _, four = run_sdet(4, scripts_per_cpu=2, commands_per_script=3)
        assert four.throughput > 2.5 * one.throughput

    def test_command_table_sane(self):
        assert len(COMMANDS) >= 6
        assert DEFAULT_COMMANDS_PER_SCRIPT > 0
        for name, spec in COMMANDS.items():
            assert len(spec) == 7
            assert spec[0] > 0  # compute cycles


class TestScientific:
    def test_barrier_phases_complete(self):
        kernel, fac, res = run_scientific(ncpus=3, phases=3,
                                          phase_cycles=200_000)
        assert res.elapsed_cycles > 0
        trace = fac.decode()
        begins = trace.filter(name="TRC_APP_PHASE_BEGIN")
        ends = trace.filter(name="TRC_APP_PHASE_END")
        assert len(begins) == len(ends) == 3 * 3

    def test_high_utilization_one_thread_per_cpu(self):
        kernel, fac, res = run_scientific(ncpus=2, phases=3,
                                          phase_cycles=1_000_000)
        assert min(res.utilization) > 0.5

    def test_no_tracing_variant(self):
        kernel, fac, res = run_scientific(ncpus=2, phases=2,
                                          phase_cycles=100_000, tracing=False)
        assert fac is None


class TestContention:
    def test_generates_contention(self):
        kernel, fac, res = run_contention(ncpus=4, workers_per_cpu=2,
                                          iterations=20)
        assert res.lock_contentions > 0
        trace = fac.decode()
        assert trace.filter(name="TRC_LOCK_CONTEND_START")

    def test_pc_samples_present(self):
        kernel, fac, res = run_contention(ncpus=2, workers_per_cpu=2,
                                          iterations=20)
        trace = fac.decode()
        assert trace.filter(major=Major.PCSAMPLE)


class TestMultiprog:
    def test_oversubscription_causes_context_switches(self):
        kernel, fac, res = run_multiprog(ncpus=2, jobs_per_cpu=6)
        assert res.jobs == 12
        assert res.context_switches > res.jobs  # real multiprogramming
        trace = fac.decode()
        assert trace.filter(name="TRC_PROC_CTX_SWITCH")

    def test_all_jobs_finish(self):
        kernel, fac, res = run_multiprog(ncpus=2, jobs_per_cpu=4)
        jobs = [p for p in kernel.processes.values()
                if p.name.startswith("job")]
        assert jobs and all(p.exited for p in jobs)
