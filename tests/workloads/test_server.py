"""Multi-threaded server workload tests."""

import pytest

from repro.tools.pcprofile import pc_profile
from repro.workloads.server import run_server


@pytest.fixture(scope="module")
def server_run():
    kernel, facility, result = run_server(
        ncpus=4, nworkers=3, nclients=4, requests_per_client=8,
        pc_sample_period=4_000,
    )
    return kernel, facility.decode(), result


def test_all_requests_served(server_run):
    kernel, trace, result = server_run
    assert result.requests_completed == 4 * 8
    assert result.mean_latency > 0
    assert result.max_latency >= result.mean_latency


def test_server_process_is_multithreaded(server_run):
    kernel, trace, result = server_run
    server = kernel.processes[result.server_pid]
    assert len(server.threads) == 1 + 3  # main + workers
    thread_creates = [
        e for e in trace.filter(name="TRC_PROC_THR_CREATE")
        if e.data[1] == result.server_pid
    ]
    assert len(thread_creates) == 4


def test_process_exits_once_after_all_threads(server_run):
    kernel, trace, result = server_run
    server = kernel.processes[result.server_pid]
    assert server.exited
    returned = [e for e in trace.filter(name="TRC_USER_RETURNED_MAIN")
                if e.data[0] == result.server_pid]
    assert len(returned) == 1


def test_queue_lock_contention_visible(server_run):
    kernel, trace, result = server_run
    lock = next(l for l in kernel.locks
                if l.name == "Server::requestQueue")
    assert lock.acquisitions >= 2 * 4 * 8  # push + pop per request


def test_worker_functions_in_profile(server_run):
    kernel, trace, result = server_run
    hist = pc_profile(trace, kernel.symbols().pc_names)
    names = [n for _, n in hist]
    assert any("ServerWorker::handle_request" in n for n in names)


def test_clients_all_finish(server_run):
    kernel, trace, result = server_run
    clients = [p for p in kernel.processes.values()
               if p.name.startswith("client")]
    assert len(clients) == 4
    assert all(p.exited for p in clients)


def test_latency_grows_with_oversubscription():
    """One worker serving many clients queues requests; more workers
    cut the latency."""
    _, _, few = run_server(ncpus=4, nworkers=1, nclients=4,
                           requests_per_client=5)
    _, _, many = run_server(ncpus=4, nworkers=4, nclients=4,
                            requests_per_client=5)
    assert few.requests_completed == many.requests_completed == 20
    assert many.mean_latency < few.mean_latency
