"""Discrete-event engine tests."""

import pytest

from repro.ksim.engine import Engine, EngineClock


def test_events_fire_in_time_order():
    e = Engine()
    order = []
    e.at(30, lambda: order.append("c"))
    e.at(10, lambda: order.append("a"))
    e.at(20, lambda: order.append("b"))
    e.run()
    assert order == ["a", "b", "c"]
    assert e.now == 30


def test_equal_times_fire_in_schedule_order():
    e = Engine()
    order = []
    e.at(10, lambda: order.append(1))
    e.at(10, lambda: order.append(2))
    e.at(10, lambda: order.append(3))
    e.run()
    assert order == [1, 2, 3]


def test_after_is_relative():
    e = Engine()
    seen = []
    e.at(100, lambda: e.after(5, lambda: seen.append(e.now)))
    e.run()
    assert seen == [105]


def test_cannot_schedule_in_past():
    e = Engine()
    e.at(10, lambda: None)
    e.run()
    with pytest.raises(ValueError):
        e.at(5, lambda: None)
    with pytest.raises(ValueError):
        e.after(-1, lambda: None)


def test_cancel_token():
    e = Engine()
    seen = []
    tok = e.at(10, lambda: seen.append("cancelled"))
    e.at(20, lambda: seen.append("kept"))
    tok.cancel()
    e.run()
    assert seen == ["kept"]


def test_run_until_stops_clock_at_horizon():
    e = Engine()
    e.at(100, lambda: None)
    processed = e.run(until=50)
    assert processed == 0
    assert e.now == 50
    e.run()
    assert e.now == 100


def test_run_max_events():
    e = Engine()
    for t in range(10):
        e.at(t + 1, lambda: None)
    assert e.run(max_events=3) == 3
    assert e.now == 3


def test_events_scheduled_during_run_execute():
    e = Engine()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            e.after(1, lambda: chain(n + 1))

    e.at(0, lambda: chain(0))
    e.run()
    assert seen == [0, 1, 2, 3, 4, 5]


def test_pending_counts_uncancelled():
    e = Engine()
    tok = e.at(5, lambda: None)
    e.at(6, lambda: None)
    assert e.pending == 2
    tok.cancel()
    assert e.pending == 1


def test_engine_clock_tracks_now():
    e = Engine()
    clock = EngineClock(e)
    assert clock.now() == 0
    e.at(42, lambda: None)
    e.run()
    assert clock.now(3) == 42
