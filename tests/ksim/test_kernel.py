"""Kernel executor tests: scheduling, preemption, locks, lifecycle."""

import pytest

from repro.core.facility import TraceFacility
from repro.core.majors import ExcMinor, LockMinor, Major, ProcMinor
from repro.ksim.costs import DEFAULT_COSTS
from repro.ksim.kernel import Kernel, KernelConfig
from repro.ksim.ops import Acquire, BlockOn, Compute, Release, Wake


def make_kernel(ncpus=2, tracing=True, **cfg_kw):
    cfg = KernelConfig(ncpus=ncpus, **cfg_kw)
    kernel = Kernel(cfg)
    facility = None
    if tracing:
        facility = TraceFacility(
            ncpus=ncpus, clock=kernel.clock, buffer_words=1024, num_buffers=8
        )
        facility.enable_all()
        kernel.facility = facility
    return kernel, facility


class TestBasicExecution:
    def test_compute_advances_time(self):
        kernel, _ = make_kernel(tracing=False)

        def prog(api):
            yield Compute(12_345)

        kernel.spawn_process(prog, "p")
        assert kernel.run_until_quiescent()
        # context switch + compute + exit costs
        assert kernel.engine.now >= 12_345

    def test_program_return_value_ends_thread(self):
        kernel, _ = make_kernel(tracing=False)
        ran = []

        def prog(api):
            yield Compute(10)
            ran.append(True)

        kernel.spawn_process(prog, "p")
        assert kernel.run_until_quiescent()
        assert ran == [True]
        assert kernel.live_threads == 0

    def test_two_cpus_run_in_parallel(self):
        kernel, _ = make_kernel(ncpus=2, tracing=False)

        def prog(api):
            yield Compute(1_000_000)

        kernel.spawn_process(prog, "a", cpu=0)
        kernel.spawn_process(prog, "b", cpu=1)
        assert kernel.run_until_quiescent()
        # Parallel: total elapsed ~1M + overheads, not ~2M.
        assert kernel.engine.now < 1_500_000

    def test_oversubscribed_cpu_serializes(self):
        kernel, _ = make_kernel(ncpus=1, tracing=False)

        def prog(api):
            yield Compute(1_000_000)

        kernel.spawn_process(prog, "a", cpu=0)
        kernel.spawn_process(prog, "b", cpu=0)
        assert kernel.run_until_quiescent()
        assert kernel.engine.now >= 2_000_000

    def test_unknown_op_raises(self):
        kernel, _ = make_kernel(tracing=False)

        def prog(api):
            yield "not an op"

        kernel.spawn_process(prog, "p")
        with pytest.raises(TypeError):
            kernel.run_until_quiescent()


class TestPreemption:
    def test_quantum_preemption_alternates_threads(self):
        kernel, fac = make_kernel(ncpus=1)

        def prog(api):
            yield Compute(5 * DEFAULT_COSTS.quantum)

        kernel.spawn_process(prog, "a", cpu=0)
        kernel.spawn_process(prog, "b", cpu=0)
        assert kernel.run_until_quiescent()
        trace = fac.decode()
        switches = trace.filter(major=Major.PROC, minor=ProcMinor.CONTEXT_SWITCH)
        assert len(switches) >= 8  # repeated alternation, not 2 dispatches
        timers = trace.filter(major=Major.EXC, minor=ExcMinor.TIMER_INTERRUPT)
        assert timers

    def test_lone_thread_not_requeued_on_tick(self):
        kernel, fac = make_kernel(ncpus=1)

        def prog(api):
            yield Compute(3 * DEFAULT_COSTS.quantum)

        kernel.spawn_process(prog, "solo", cpu=0)
        assert kernel.run_until_quiescent()
        trace = fac.decode()
        switches = trace.filter(major=Major.PROC, minor=ProcMinor.CONTEXT_SWITCH)
        assert len(switches) == 1  # initial dispatch only
        timers = trace.filter(major=Major.EXC, minor=ExcMinor.TIMER_INTERRUPT)
        assert len(timers) >= 2  # but ticks still fire and are traced


class TestMigration:
    def test_idle_cpu_steals_work(self):
        kernel, fac = make_kernel(ncpus=2, migration=True)

        def prog(api):
            yield Compute(500_000)

        # Three threads all pinned initially to CPU 0's queue.
        for i in range(3):
            kernel.spawn_process(prog, f"p{i}", cpu=0)
        assert kernel.run_until_quiescent()
        trace = fac.decode()
        migrations = trace.filter(major=Major.PROC, minor=ProcMinor.MIGRATE)
        assert migrations, "idle CPU 1 should have stolen work"
        assert kernel.cpus[1].migrations_in > 0

    def test_migration_disabled(self):
        kernel, fac = make_kernel(ncpus=2, migration=False)

        def prog(api):
            yield Compute(500_000)

        for i in range(3):
            kernel.spawn_process(prog, f"p{i}", cpu=0)
        assert kernel.run_until_quiescent()
        trace = fac.decode()
        assert not trace.filter(major=Major.PROC, minor=ProcMinor.MIGRATE)


class TestLocks:
    def test_uncontended_lock_no_contention_events(self):
        kernel, fac = make_kernel(ncpus=1)
        lock = kernel.create_lock("L")

        def prog(api):
            yield Acquire(lock, ("f", "g"))
            yield Compute(100)
            yield Release(lock)

        kernel.spawn_process(prog, "p")
        assert kernel.run_until_quiescent()
        assert lock.acquisitions == 1
        assert lock.contentions == 0
        trace = fac.decode()
        assert not trace.filter(major=Major.LOCK, minor=LockMinor.CONTEND_START)

    def test_contended_lock_traces_start_and_end(self):
        kernel, fac = make_kernel(ncpus=2)
        lock = kernel.create_lock("hot")

        def prog(api):
            for _ in range(5):
                yield Acquire(lock, ("worker", "inner"))
                yield Compute(3_000)
                yield Release(lock)

        kernel.spawn_process(prog, "a", cpu=0)
        kernel.spawn_process(prog, "b", cpu=1)
        assert kernel.run_until_quiescent()
        assert lock.contentions > 0
        trace = fac.decode()
        starts = trace.filter(major=Major.LOCK, minor=LockMinor.CONTEND_START)
        ends = trace.filter(major=Major.LOCK, minor=LockMinor.CONTEND_END)
        assert len(starts) == len(ends) == lock.contentions

    def test_spin_then_block_on_long_hold(self):
        kernel, fac = make_kernel(ncpus=2)
        lock = kernel.create_lock("slow")

        def holder(api):
            yield Acquire(lock, ("holder",))
            yield Compute(20 * DEFAULT_COSTS.spin_threshold)
            yield Release(lock)

        def waiter(api):
            yield Compute(1_000)  # let holder win
            yield Acquire(lock, ("waiter",))
            yield Release(lock)

        kernel.spawn_process(holder, "h", cpu=0)
        kernel.spawn_process(waiter, "w", cpu=1)
        assert kernel.run_until_quiescent()
        trace = fac.decode()
        blocks = trace.filter(major=Major.LOCK, minor=LockMinor.BLOCK)
        assert blocks, "waiter should give up spinning and block"

    def test_fifo_grant_order(self):
        kernel, _ = make_kernel(ncpus=4, tracing=False)
        lock = kernel.create_lock("fifo")
        order = []

        def holder(api):
            yield Acquire(lock, ())
            yield Compute(50_000)
            yield Release(lock)
            order.append("holder")

        def waiter(name, delay):
            def prog(api):
                yield Compute(delay)
                yield Acquire(lock, ())
                order.append(name)
                yield Release(lock)
            return prog

        kernel.spawn_process(holder, "h", cpu=0)
        kernel.spawn_process(waiter("w1", 1_000), "w1", cpu=1)
        kernel.spawn_process(waiter("w2", 2_000), "w2", cpu=2)
        kernel.spawn_process(waiter("w3", 3_000), "w3", cpu=3)
        assert kernel.run_until_quiescent()
        assert order.index("w1") < order.index("w2") < order.index("w3")

    def test_release_by_non_owner_raises(self):
        kernel, _ = make_kernel(tracing=False)
        lock = kernel.create_lock("L")

        def prog(api):
            yield Release(lock)

        kernel.spawn_process(prog, "p")
        with pytest.raises(RuntimeError):
            kernel.run_until_quiescent()

    def test_lock_wait_statistics_recorded(self):
        kernel, _ = make_kernel(ncpus=2, tracing=False)
        lock = kernel.create_lock("stats")

        def prog(api):
            for _ in range(3):
                yield Acquire(lock, ())
                yield Compute(5_000)
                yield Release(lock)

        kernel.spawn_process(prog, "a", cpu=0)
        kernel.spawn_process(prog, "b", cpu=1)
        assert kernel.run_until_quiescent()
        if lock.contentions:
            assert lock.total_wait_cycles > 0
            assert lock.max_wait_cycles > 0


class TestBlockingAndWaking:
    def test_block_then_wake(self):
        kernel, _ = make_kernel(ncpus=2, tracing=False)
        seen = []

        def sleeper(api):
            yield BlockOn("evt")
            seen.append("woken")

        def waker(api):
            yield Compute(10_000)
            yield Wake("evt")

        kernel.spawn_process(sleeper, "s", cpu=0)
        kernel.spawn_process(waker, "w", cpu=1)
        assert kernel.run_until_quiescent()
        assert seen == ["woken"]

    def test_block_without_wake_never_quiesces(self):
        kernel, _ = make_kernel(tracing=False)

        def stuck(api):
            yield BlockOn("never")

        kernel.spawn_process(stuck, "p")
        assert kernel.run_until_quiescent(max_cycles=10**7) is False
        assert kernel.live_threads == 1


class TestProcessLifecycle:
    def test_spawn_and_wait(self):
        kernel, fac = make_kernel(ncpus=2)
        order = []

        def child_prog(api):
            yield from api.compute(50_000, pc="child")
            order.append("child_done")

        def parent(api):
            child = yield from api.spawn(child_prog, "child")
            yield from api.wait(child)
            order.append("parent_done")

        kernel.spawn_process(parent, "parent")
        assert kernel.run_until_quiescent()
        assert order == ["child_done", "parent_done"]
        trace = fac.decode()
        assert trace.filter(name="TRC_PROC_CREATE")
        assert trace.filter(name="TRC_USER_RUN_UL_LOADER")
        assert trace.filter(name="TRC_USER_RETURNED_MAIN")

    def test_wait_on_already_exited_child(self):
        kernel, _ = make_kernel(ncpus=2, tracing=False)
        done = []

        def child_prog(api):
            yield from api.compute(100, pc="quick")

        def parent(api):
            child = yield from api.spawn(child_prog, "c")
            yield from api.compute(10**7, pc="slowpoke")
            yield from api.wait(child)
            done.append(True)

        kernel.spawn_process(parent, "parent")
        assert kernel.run_until_quiescent()
        assert done == [True]

    def test_pids_are_sequential_from_2(self):
        kernel, _ = make_kernel(tracing=False)
        assert kernel.kernel_process.pid == 0
        assert kernel.base_servers.pid == 1

        def prog(api):
            yield from api.compute(1)

        p = kernel.spawn_process(prog, "first")
        assert p.pid == 2


class TestTracingModes:
    def test_compiled_out_zero_cost(self):
        kernel, _ = make_kernel(tracing=False)
        assert kernel.trace(0, Major.TEST, 0, (1, 2)) == 0

    def test_masked_costs_mask_check(self):
        kernel, fac = make_kernel()
        fac.disable_all()
        cost = kernel.trace(0, Major.TEST, 0, (1, 2))
        assert cost == DEFAULT_COSTS.trace_mask_check

    def test_enabled_costs_per_paper(self):
        kernel, fac = make_kernel()
        assert kernel.trace(0, Major.TEST, 0, ()) == 91
        assert kernel.trace(0, Major.TEST, 0, (1,)) == 91 + 11
        assert kernel.trace(0, Major.TEST, 0, (1, 2, 3)) == 91 + 33
        assert kernel.trace(0, Major.TEST, 0, (1,), asm_path=True) == 30 + 11

    def test_events_timestamped_with_engine_time(self):
        kernel, fac = make_kernel(ncpus=1)

        def prog(api):
            yield Compute(100_000)
            yield from api.mark("late")

        kernel.spawn_process(prog, "p")
        assert kernel.run_until_quiescent()
        trace = fac.decode()
        ev = trace.filter(name="TRC_USER_APP_MARK")[0]
        assert ev.time >= 100_000


class TestPcSampling:
    def test_samples_attribute_running_function(self):
        kernel, fac = make_kernel(ncpus=1, pc_sample_period=10_000)

        def prog(api):
            yield from api.compute(500_000, pc="user:hot_loop")

        kernel.spawn_process(prog, "p")
        assert kernel.run_until_quiescent()
        trace = fac.decode()
        samples = trace.filter(major=Major.PCSAMPLE)
        assert samples
        pc_names = kernel.symbols().pc_names
        names = {pc_names[e.data[1]] for e in samples}
        assert "user:hot_loop" in names

    def test_no_samples_when_disabled(self):
        kernel, fac = make_kernel(ncpus=1, pc_sample_period=0)

        def prog(api):
            yield from api.compute(500_000, pc="x")

        kernel.spawn_process(prog, "p")
        assert kernel.run_until_quiescent()
        assert not fac.decode().filter(major=Major.PCSAMPLE)


class TestUtilization:
    def test_busy_single_cpu_near_full_utilization(self):
        kernel, _ = make_kernel(ncpus=1, tracing=False)

        def prog(api):
            yield Compute(10**6)

        kernel.spawn_process(prog, "p")
        assert kernel.run_until_quiescent()
        assert kernel.utilization()[0] > 0.9

    def test_empty_second_cpu_mostly_idle(self):
        kernel, _ = make_kernel(ncpus=2, migration=False, tracing=False)

        def prog(api):
            yield Compute(10**6)

        kernel.spawn_process(prog, "p", cpu=0)
        assert kernel.run_until_quiescent()
        util = kernel.utilization()
        assert util[0] > 0.9
        assert util[1] < 0.1
