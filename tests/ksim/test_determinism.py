"""Simulator determinism and conservation properties.

The simulator must be a function of its inputs: same seed, same
programs → bit-identical trace and timing (this is what makes the
Figure 3 overhead measurements exact).  And its accounting must
conserve: threads all terminate, busy time never exceeds capacity,
per-CPU idle + busy covers elapsed.
"""


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.facility import TraceFacility
from repro.ksim import Kernel, KernelConfig, ThreadState

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# A compact op-program genome: list of (kind, magnitude) pairs.
genome = st.lists(
    st.tuples(st.sampled_from(["compute", "malloc", "io", "touch", "sleep"]),
              st.integers(1, 5)),
    min_size=1, max_size=8,
)


def make_program(ops):
    def program(api):
        held = []
        for kind, mag in ops:
            if kind == "compute":
                yield from api.compute(10_000 * mag, pc="user:genome")
            elif kind == "malloc":
                addr = yield from api.malloc(1024 * mag)
                held.append((addr, 1024 * mag))
            elif kind == "io":
                fd = yield from api.open("/g")
                yield from api.read(fd, 512 * mag)
                yield from api.close(fd)
            elif kind == "touch":
                yield from api.touch(mag)
            elif kind == "sleep":
                yield from api.sleep(5_000 * mag)
        for addr, size in held:
            yield from api.free(addr, size)
    return program


def run_genomes(genomes, ncpus=2, seed=3):
    kernel = Kernel(KernelConfig(ncpus=ncpus, seed=seed))
    fac = TraceFacility(ncpus=ncpus, clock=kernel.clock, buffer_words=2048,
                        num_buffers=16)
    fac.enable_all()
    kernel.facility = fac
    for i, ops in enumerate(genomes):
        kernel.spawn_process(make_program(ops), f"g{i}", cpu=i % ncpus)
    assert kernel.run_until_quiescent(max_cycles=10**12)
    return kernel, fac


@given(st.lists(genome, min_size=1, max_size=4))
@settings(**SETTINGS)
def test_bit_identical_reruns(genomes):
    k1, f1 = run_genomes(genomes)
    k2, f2 = run_genomes(genomes)
    assert k1.engine.now == k2.engine.now
    t1 = [(e.time, e.cpu, e.major, e.minor, tuple(e.data))
          for e in f1.decode().all_events()]
    t2 = [(e.time, e.cpu, e.major, e.minor, tuple(e.data))
          for e in f2.decode().all_events()]
    assert t1 == t2


@given(st.lists(genome, min_size=1, max_size=4))
@settings(**SETTINGS)
def test_conservation_invariants(genomes):
    kernel, fac = run_genomes(genomes)
    # Every thread terminated.
    for proc in kernel.processes.values():
        for thread in proc.threads:
            assert thread.state is ThreadState.DONE
    # Utilization bounded.
    for u in kernel.utilization():
        assert 0.0 <= u <= 1.0
    # The trace decodes clean.
    trace = fac.decode()
    assert not trace.anomalies
    # Per-CPU timestamps monotone.
    for cpu in trace.events_by_cpu:
        times = [e.time for e in trace.events(cpu)]
        assert all(a <= b for a, b in zip(times, times[1:]))


@given(st.lists(genome, min_size=2, max_size=4), st.integers(0, 2**16))
@settings(**SETTINGS)
def test_seed_only_changes_timing_not_correctness(genomes, seed):
    kernel, fac = run_genomes(genomes, seed=seed)
    trace = fac.decode()
    assert not trace.anomalies
    # Syscall enter/exit pairing survives any schedule.
    opens = len(trace.filter(name="TRC_SYSCALL_ENTER"))
    exits = len(trace.filter(name="TRC_SYSCALL_EXIT"))
    assert opens == exits
