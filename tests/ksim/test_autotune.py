"""Self-tuning (trace-fed hot swap) tests — §5 future work."""

import pytest

from repro.core.facility import TraceFacility
from repro.ksim.autotune import AllocatorAutotuner
from repro.ksim.kernel import Kernel, KernelConfig
from repro.workloads.contention import alloc_storm


def run_storm(autotune: bool, iterations=80, ncpus=4):
    cfg = KernelConfig(ncpus=ncpus, global_alloc_fraction=0.9, seed=5)
    kernel = Kernel(cfg)
    facility = TraceFacility(ncpus=ncpus, clock=kernel.clock,
                             buffer_words=2048, num_buffers=8)
    facility.enable_all()
    kernel.facility = facility
    tuner = AllocatorAutotuner(kernel, check_period=300_000,
                               contention_threshold=10)
    if autotune:
        tuner.arm()
    for w in range(ncpus * 2):
        kernel.spawn_process(
            alloc_storm(iterations, 8_192, 3_000), f"churn{w}",
            cpu=w % ncpus,
        )
    assert kernel.run_until_quiescent()
    return kernel, facility, tuner


def test_autotuner_swaps_under_pressure():
    kernel, facility, tuner = run_storm(autotune=True)
    assert tuner.swapped
    assert len(tuner.actions) == 1
    action = tuner.actions[0]
    assert "per-CPU pools" in action.action
    assert action.contentions_seen >= 10
    assert "AllocRegionManager" in action.lock_name


def test_swap_improves_the_workload():
    k_off, _, _ = run_storm(autotune=False)
    k_on, _, tuner = run_storm(autotune=True)
    assert tuner.swapped
    assert k_on.engine.now < k_off.engine.now, (
        "self-tuning must speed the run up"
    )


def test_contention_rate_drops_after_swap():
    kernel, facility, tuner = run_storm(autotune=True)
    swap_time = tuner.actions[0].at_cycle
    trace = facility.decode()
    starts = trace.filter(name="TRC_LOCK_CONTEND_START")
    before = [e for e in starts if e.time <= swap_time]
    after = [e for e in starts if e.time > swap_time]
    span_before = max(1, swap_time)
    span_after = max(1, kernel.engine.now - swap_time)
    rate_before = len(before) / span_before
    rate_after = len(after) / span_after
    assert rate_after < rate_before * 0.5


def test_tuning_action_logged_into_the_trace():
    kernel, facility, tuner = run_storm(autotune=True)
    trace = facility.decode()
    marks = [e for e in trace.filter(name="TRC_USER_APP_MARK")
             if "autotune" in e.render()]
    assert marks, "the swap must leave an audit event in the stream"
    assert marks[0].time == pytest.approx(tuner.actions[0].at_cycle,
                                          abs=10_000)


def test_quiet_system_never_swaps():
    cfg = KernelConfig(ncpus=2, global_alloc_fraction=0.02, seed=5)
    kernel = Kernel(cfg)
    facility = TraceFacility(ncpus=2, clock=kernel.clock,
                             buffer_words=2048, num_buffers=8)
    facility.enable_all()
    kernel.facility = facility
    tuner = AllocatorAutotuner(kernel, check_period=200_000,
                               contention_threshold=10)
    tuner.arm()
    kernel.spawn_process(alloc_storm(30, 4_096, 10_000), "calm", cpu=0)
    assert kernel.run_until_quiescent()
    assert not tuner.swapped
    assert tuner.describe() == "autotuner: no action taken"
