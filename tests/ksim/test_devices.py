"""Block-device tests: queueing, interrupts, latency under load."""


from repro.core.facility import TraceFacility
from repro.core.majors import ExcMinor, Major
from repro.ksim import Kernel, KernelConfig


def make_kernel(ncpus=2):
    kernel = Kernel(KernelConfig(ncpus=ncpus))
    fac = TraceFacility(ncpus=ncpus, clock=kernel.clock, buffer_words=2048,
                        num_buffers=8)
    fac.enable_all()
    kernel.facility = fac
    return kernel, fac


def reader_prog(nbytes=4096, uncached_reads=1):
    def prog(api):
        fd = yield from api.open("/data/file")
        for _ in range(uncached_reads):
            yield from api.read(fd, nbytes, cached=False)
        yield from api.close(fd)
    return prog


def test_uncached_read_takes_device_time():
    kernel, fac = make_kernel()
    kernel.spawn_process(reader_prog(), "r")
    assert kernel.run_until_quiescent()
    assert kernel.engine.now >= kernel.disk.seek_cycles
    n, mean, mx = kernel.disk.stats()
    assert n == 1
    assert mean >= kernel.disk.seek_cycles


def test_completion_interrupt_traced():
    kernel, fac = make_kernel()
    kernel.spawn_process(reader_prog(uncached_reads=3), "r")
    assert kernel.run_until_quiescent()
    irqs = fac.decode().filter(major=Major.EXC, minor=ExcMinor.IO_INTERRUPT)
    assert len(irqs) == 3
    assert kernel.disk.interrupts == 3


def test_concurrent_requests_queue():
    """Two simultaneous uncached reads: the second waits behind the
    first — its latency includes the queueing delay."""
    kernel, fac = make_kernel()
    kernel.spawn_process(reader_prog(), "a", cpu=0)
    kernel.spawn_process(reader_prog(), "b", cpu=1)
    assert kernel.run_until_quiescent()
    reqs = sorted(kernel.disk.completed, key=lambda r: r.submitted_at)
    assert len(reqs) == 2
    first, second = reqs
    assert second.queue_delay > 0 or second.started_at >= first.completed_at
    assert second.latency > first.service_time


def test_cached_reads_skip_the_device():
    kernel, fac = make_kernel()

    def prog(api):
        fd = yield from api.open("/f")
        yield from api.read(fd, 4096, cached=True)
        yield from api.close(fd)

    kernel.spawn_process(prog, "c")
    assert kernel.run_until_quiescent()
    assert kernel.disk.interrupts == 0


def test_sync_write_goes_through_device():
    kernel, fac = make_kernel()

    def prog(api):
        fd = yield from api.open("/f")
        yield from api.write(fd, 2048, sync=True)
        yield from api.close(fd)

    kernel.spawn_process(prog, "w")
    assert kernel.run_until_quiescent()
    assert kernel.disk.interrupts == 1
    assert kernel.disk.completed[0].kind == "write"


def test_device_serializes_by_service_time():
    """N queued requests finish at strictly increasing, spaced times."""
    kernel, fac = make_kernel(ncpus=4)
    for i in range(4):
        kernel.spawn_process(reader_prog(nbytes=8192), f"r{i}", cpu=i)
    assert kernel.run_until_quiescent()
    done = sorted(r.completed_at for r in kernel.disk.completed)
    gaps = [b - a for a, b in zip(done, done[1:])]
    service = kernel.disk._service_cycles(8192)
    assert all(g >= service for g in gaps)
