"""Hardware-counter substrate tests (§2's counter/tracing integration)."""


from repro.core.facility import TraceFacility
from repro.core.majors import Major
from repro.ksim import (
    CacheModel,
    Compute,
    HwCounter,
    Kernel,
    KernelConfig,
)


def make_kernel(**cfg_kw):
    kernel = Kernel(KernelConfig(ncpus=2, **cfg_kw))
    fac = TraceFacility(ncpus=2, clock=kernel.clock, buffer_words=1024,
                        num_buffers=8)
    fac.enable_all()
    kernel.facility = fac
    return kernel, fac


class TestCacheModel:
    def test_fitting_working_set_is_warm(self):
        m = CacheModel()
        assert m.miss_rate_mpk(10) == m.warm_fit_mpk
        assert m.miss_rate_mpk(m.l2_capacity_pages) == m.warm_fit_mpk

    def test_thrashing_grows_with_overshoot(self):
        m = CacheModel()
        small = m.miss_rate_mpk(m.l2_capacity_pages + 10)
        big = m.miss_rate_mpk(m.l2_capacity_pages * 10)
        assert m.warm_fit_mpk < small < big

    def test_cold_burst_bounded_by_capacity(self):
        m = CacheModel()
        assert m.cold_burst(10**6) == m.cold_burst(m.l2_capacity_pages)
        assert m.cold_burst(1) < m.cold_burst(m.l2_capacity_pages)


class TestCounting:
    def test_cycles_and_instructions_accrue(self):
        kernel, _ = make_kernel()

        def prog(api):
            yield Compute(250_000)

        kernel.spawn_process(prog, "p", cpu=0)
        assert kernel.run_until_quiescent()
        totals = kernel.hw.totals()
        assert totals[HwCounter.CYCLES] >= 250_000
        assert totals[HwCounter.INSTRUCTIONS] >= 250_000

    def test_thrasher_misses_far_more(self):
        kernel, _ = make_kernel(migration=False)

        def job(ws):
            def prog(api):
                api.set_working_set(ws)
                yield Compute(500_000)
            return prog

        kernel.spawn_process(job(16), "small", cpu=0)
        kernel.spawn_process(job(8192), "huge", cpu=1)
        assert kernel.run_until_quiescent()
        small = kernel.hw.counts[0][HwCounter.L2_MISSES]
        huge = kernel.hw.counts[1][HwCounter.L2_MISSES]
        assert huge > 10 * small

    def test_context_switches_cause_cold_bursts(self):
        kernel, _ = make_kernel(migration=False)

        def prog(api):
            for _ in range(5):
                yield Compute(50_000)
                yield from api.sleep(10_000)

        kernel.spawn_process(prog, "a", cpu=0)
        kernel.spawn_process(prog, "b", cpu=0)
        assert kernel.run_until_quiescent()
        assert kernel.hw.cold_bursts >= 5

    def test_pinned_lone_thread_single_cold_burst(self):
        kernel, _ = make_kernel(migration=False)

        def prog(api):
            for _ in range(10):
                yield Compute(50_000)

        kernel.spawn_process(prog, "solo", cpu=0)
        assert kernel.run_until_quiescent()
        assert kernel.hw.cold_bursts == 1

    def test_invalid_working_set_rejected(self):
        kernel, _ = make_kernel()
        failures = []

        def prog(api):
            try:
                api.set_working_set(0)
            except ValueError:
                failures.append(True)
            yield Compute(10)

        kernel.spawn_process(prog, "p")
        assert kernel.run_until_quiescent()
        assert failures == [True]


class TestSampling:
    def test_timer_sampling_logs_hwperf_events(self):
        kernel, fac = make_kernel(hw_sample_period=20_000)

        def prog(api):
            api.set_working_set(4096)
            yield Compute(500_000)

        kernel.spawn_process(prog, "p", cpu=0)
        assert kernel.run_until_quiescent()
        samples = fac.decode().filter(major=Major.HWPERF)
        assert samples
        counters = {e.data[0] for e in samples}
        assert int(HwCounter.L2_MISSES) in counters

    def test_overflow_sampling_attributes_to_causer(self):
        kernel, fac = make_kernel(hw_overflow_threshold=1_000,
                                  migration=False)

        def job(ws, name):
            def prog(api):
                api.set_working_set(ws)
                yield Compute(400_000)
            return prog

        hog = kernel.spawn_process(job(8192, "hog"), "hog", cpu=0)
        kernel.spawn_process(job(8, "tiny"), "tiny", cpu=1)
        assert kernel.run_until_quiescent()
        from repro.tools.memprofile import memory_profile

        report = memory_profile(fac.decode(), kernel.symbols().process_names)
        assert report.per_process
        top = report.hottest(1)[0]
        assert top.pid == hog.pid

    def test_no_sampling_when_disabled(self):
        kernel, fac = make_kernel()

        def prog(api):
            yield Compute(500_000)

        kernel.spawn_process(prog, "p")
        assert kernel.run_until_quiescent()
        assert not fac.decode().filter(major=Major.HWPERF)

    def test_sample_deltas_sum_close_to_totals(self):
        kernel, fac = make_kernel(hw_overflow_threshold=500, migration=False)

        def prog(api):
            api.set_working_set(4096)
            yield Compute(600_000)

        kernel.spawn_process(prog, "p", cpu=0)
        assert kernel.run_until_quiescent()
        samples = fac.decode().filter(major=Major.HWPERF)
        sampled = sum(e.data[1] for e in samples
                      if e.data[0] == int(HwCounter.L2_MISSES))
        total = kernel.hw.totals()[HwCounter.L2_MISSES]
        # The tail below one threshold is never flushed.
        assert total - 500 <= sampled <= total
