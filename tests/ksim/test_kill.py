"""Process-kill (SIGKILL semantics) tests."""


from repro.core.facility import TraceFacility
from repro.ksim import (
    Acquire,
    BlockOn,
    Compute,
    Kernel,
    KernelConfig,
    Release,
    ThreadState,
)


def make_kernel(ncpus=2, **kw):
    kernel = Kernel(KernelConfig(ncpus=ncpus, **kw))
    fac = TraceFacility(ncpus=ncpus, clock=kernel.clock, buffer_words=1024,
                        num_buffers=8)
    fac.enable_all()
    kernel.facility = fac
    return kernel, fac


def test_kill_running_process():
    kernel, fac = make_kernel()

    def forever(api):
        while True:
            yield Compute(100_000)

    victim = kernel.spawn_process(forever, "victim", cpu=0)
    kernel.engine.after(500_000, lambda: kernel.kill_process(victim))
    assert kernel.run_until_quiescent(max_cycles=10**8)
    assert victim.exited
    assert victim.exit_status == 137
    assert all(t.state is ThreadState.DONE for t in victim.threads)


def test_kill_wakes_waiting_parent():
    kernel, fac = make_kernel()
    done = []

    def child_prog(api):
        while True:
            yield Compute(100_000)

    def parent(api):
        child = yield from api.spawn(child_prog, "child")
        yield from api.wait(child)
        done.append(child.exit_status)

    kernel.spawn_process(parent, "parent", cpu=0)

    def reap():
        child = next(p for p in kernel.processes.values()
                     if p.name == "child")
        kernel.kill_process(child)

    kernel.engine.after(800_000, reap)
    assert kernel.run_until_quiescent(max_cycles=10**9)
    assert done == [137]


def test_kill_blocked_process():
    kernel, fac = make_kernel()

    def stuck(api):
        yield BlockOn("never-signaled")

    victim = kernel.spawn_process(stuck, "stuck", cpu=0)
    kernel.engine.after(100_000, lambda: kernel.kill_process(victim))
    assert kernel.run_until_quiescent(max_cycles=10**8)
    assert victim.exited
    assert kernel.waitq.get("never-signaled") in (None, [])


def test_kill_lock_holder_wedges_waiters():
    """Killing a lock holder leaves the lock orphaned — the waiter hangs
    and the trace shows an acquisition with no release (what the
    hold-time tool reports as unreleased)."""
    kernel, fac = make_kernel(trace_all_lock_events=True)
    lock = kernel.create_lock("doomed")

    def holder(api):
        yield Acquire(lock, ("holder",))
        yield Compute(10**9)  # would hold for ages
        yield Release(lock)

    def waiter(api):
        yield Compute(50_000)
        yield Acquire(lock, ("waiter",))
        yield Release(lock)

    h = kernel.spawn_process(holder, "holder", cpu=0)
    kernel.spawn_process(waiter, "waiter", cpu=1)
    kernel.engine.after(200_000, lambda: kernel.kill_process(h))
    finished = kernel.run_until_quiescent(max_cycles=5 * 10**7)
    assert not finished, "the orphaned lock must wedge the waiter"
    assert lock.owner is not None  # still owned by the corpse
    from repro.tools.holdtimes import hold_times

    report = hold_times(fac.decode())
    assert report.unreleased >= 1


def test_kill_spinning_waiter_releases_nothing():
    kernel, fac = make_kernel()
    lock = kernel.create_lock("L")

    def holder(api):
        yield Acquire(lock, ())
        yield Compute(3_000_000)
        yield Release(lock)

    def spinner(api):
        yield Compute(10_000)
        yield Acquire(lock, ())
        yield Release(lock)

    kernel.spawn_process(holder, "h", cpu=0)
    s = kernel.spawn_process(spinner, "s", cpu=1)
    kernel.engine.after(100_000, lambda: kernel.kill_process(s))
    assert kernel.run_until_quiescent(max_cycles=10**8)
    assert not lock.waiters
    assert lock.owner is None  # holder released normally


def test_kill_is_idempotent():
    kernel, fac = make_kernel()

    def prog(api):
        yield Compute(10**7)

    victim = kernel.spawn_process(prog, "v", cpu=0)
    kernel.engine.after(1_000, lambda: kernel.kill_process(victim))
    kernel.engine.after(2_000, lambda: kernel.kill_process(victim))
    assert kernel.run_until_quiescent(max_cycles=10**8)
    assert victim.exited


def test_exit_event_carries_kill_status():
    kernel, fac = make_kernel()

    def prog(api):
        yield Compute(10**7)

    victim = kernel.spawn_process(prog, "v", cpu=0)
    kernel.engine.after(1_000, lambda: kernel.kill_process(victim))
    assert kernel.run_until_quiescent(max_cycles=10**8)
    exits = fac.decode().filter(name="TRC_PROC_EXIT")
    mine = [e for e in exits if e.data[0] == victim.pid]
    assert mine and mine[0].data[1] == 137
