"""Dynamic-probe tests (§5's KernInst/DProbes complement)."""


from repro.core.facility import TraceFacility
from repro.core.majors import AppMinor, Major
from repro.ksim import Compute, Kernel, KernelConfig


def make_kernel(ncpus=1):
    kernel = Kernel(KernelConfig(ncpus=ncpus))
    fac = TraceFacility(ncpus=ncpus, clock=kernel.clock, buffer_words=1024,
                        num_buffers=8)
    fac.enable_all()
    kernel.facility = fac
    return kernel, fac


def looped_program(loops=10, pc="kernel::hot_path"):
    def prog(api):
        for _ in range(loops):
            yield Compute(10_000, pc=pc)
            yield Compute(5_000, pc="kernel::other_path")
    return prog


def test_probe_fires_per_entry_and_logs():
    kernel, fac = make_kernel()
    probe = kernel.probes.attach("kernel::hot_path")
    kernel.spawn_process(looped_program(10), "p")
    assert kernel.run_until_quiescent()
    assert probe.hits == 10
    events = fac.decode().filter(major=Major.APP, minor=AppMinor.PROBE)
    assert len(events) == 10
    assert all(e.data[0] == probe.probe_id for e in events)


def test_probe_only_matches_its_label():
    kernel, fac = make_kernel()
    probe = kernel.probes.attach("kernel::other_path")
    kernel.spawn_process(looped_program(7), "p")
    assert kernel.run_until_quiescent()
    assert probe.hits == 7  # not 14


def test_attach_at_runtime_mid_execution():
    """The point of dynamic instrumentation: start monitoring an
    already-running system in an unanticipated way."""
    kernel, fac = make_kernel()
    kernel.spawn_process(looped_program(20), "p")
    attached = {}

    def attach_later():
        attached["probe"] = kernel.probes.attach("kernel::hot_path")

    kernel.engine.after(80_000, attach_later)
    assert kernel.run_until_quiescent()
    probe = attached["probe"]
    assert 0 < probe.hits < 20, "must miss the entries before attach"


def test_detach_stops_firing():
    kernel, fac = make_kernel()
    probe = kernel.probes.attach("kernel::hot_path")

    def detach_later():
        kernel.probes.detach(probe)

    kernel.engine.after(80_000, detach_later)
    kernel.spawn_process(looped_program(20), "p")
    assert kernel.run_until_quiescent()
    assert 0 < probe.hits < 20
    assert "kernel::hot_path" not in kernel.probes.active_labels


def test_probe_overhead_charged():
    """Instrumented runs take longer by ~hits * (springboard + event)."""
    def run(with_probe):
        kernel, _ = make_kernel()
        if with_probe:
            kernel.probes.attach("kernel::hot_path")
        kernel.spawn_process(looped_program(50), "p")
        assert kernel.run_until_quiescent()
        return kernel.engine.now, kernel.probes.total_hits

    base, _ = run(False)
    probed, hits = run(True)
    assert hits == 50
    extra = probed - base
    per_hit = kernel_overhead = extra / hits
    assert per_hit > 500  # springboard dominates the static event cost


def test_multiple_probes_on_same_label():
    kernel, fac = make_kernel()
    p1 = kernel.probes.attach("kernel::hot_path")
    p2 = kernel.probes.attach("kernel::hot_path")
    kernel.spawn_process(looped_program(5), "p")
    assert kernel.run_until_quiescent()
    assert p1.hits == p2.hits == 5
    events = fac.decode().filter(major=Major.APP, minor=AppMinor.PROBE)
    assert len(events) == 10


def test_disabled_probe_does_not_fire():
    kernel, fac = make_kernel()
    probe = kernel.probes.attach("kernel::hot_path")
    probe.enabled = False
    kernel.spawn_process(looped_program(5), "p")
    assert kernel.run_until_quiescent()
    assert probe.hits == 0
