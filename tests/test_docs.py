"""Documentation freshness and consistency checks."""

from pathlib import Path


REPO = Path(__file__).parent.parent


def test_generated_event_reference_is_fresh():
    """docs/events.md must match the current registry."""
    from repro.core.registry import default_registry

    path = REPO / "docs" / "events.md"
    assert path.exists(), "run python docs/generate.py"
    assert path.read_text().strip() == \
        default_registry().to_markdown().strip(), (
            "docs/events.md is stale; regenerate with python docs/generate.py"
        )


def test_markdown_docs_exist_and_nonempty():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/trace-format.md", "docs/architecture.md",
                 "docs/fault-tolerance.md", "docs/testing.md",
                 "docs/parallel-analysis.md", "docs/columnar.md"):
        path = REPO / name
        assert path.exists(), name
        assert len(path.read_text()) > 500, name


def test_examples_referenced_in_readme_exist():
    readme = (REPO / "README.md").read_text()
    for line in readme.splitlines():
        if "examples/" in line and ".py" in line:
            start = line.index("examples/")
            end = line.index(".py", start) + 3
            rel = line[start:end]
            assert (REPO / rel).exists(), rel


def test_all_public_tool_functions_have_docstrings():
    import repro.tools as tools

    for name in tools.__all__:
        obj = getattr(tools, name)
        assert obj.__doc__, f"{name} lacks a docstring"


def test_every_module_has_a_docstring():
    import importlib
    import pkgutil

    import repro

    for modinfo in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        mod = importlib.import_module(modinfo.name)
        assert mod.__doc__, f"{modinfo.name} lacks a module docstring"
