"""Fleet merge layer: launcher end-to-end, ingest shapes, pack/query.

The load-bearing contracts:

* the local launcher produces per-node traces + anchor sidecars that
  ``merge_paths`` aligns into one view (both fork and spawn),
* per-node tool output over the merged view is byte-identical to
  running the tool on that node's trace alone (all four ported tools),
* a packed fleet store round-trips to the same unified batch and
  prunes whole nodes' shards on ``Predicate(nodes=...)``, and
* every decode path agrees on the per-node traces feeding the merge
  (the ``assert_all_paths_identical`` contract, extended to fleets).
"""

import numpy as np
import pytest

from repro.core.majors import Major
from repro.core.registry import default_registry
from repro.core.writer import load_records
from repro.fleet import (
    FleetAligner,
    NodeAnchors,
    NodeSource,
    get_backend,
    ingest_path,
    measured_fleet_skew,
    merge_paths,
    merge_traces,
    pack_fleet_view,
    read_anchor_sidecar,
    write_anchor_sidecar,
)
from repro.fleet.launch import BACKENDS, NodeSpec, fleet_run
from repro.store import Predicate, TraceStore
from repro.store.query import select

from tests.core.test_parallel import assert_all_paths_identical


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """A launched 2-node fleet (local backend, default start method)."""
    out = str(tmp_path_factory.mktemp("fleet"))
    return fleet_run(out, nodes=2, iterations=12)


class TestLauncher:
    def test_end_to_end_artifacts(self, fleet):
        import os

        assert [r.node for r in fleet.node_results] == [0, 1]
        for r in fleet.node_results:
            assert os.path.exists(r.trace_path)
            assert os.path.exists(r.anchors_path)
        view = fleet.view
        assert view.nodes == [0, 1]
        assert len(view) > 0
        s = view.summary()
        assert all(s["per_node"][str(n)]["aligned"] for n in view.nodes)
        assert s["skew_bound"] == view.skew_bound()

    def test_spawn_start_method(self, tmp_path):
        result = fleet_run(str(tmp_path / "sp"), nodes=2, iterations=5,
                           start_method="spawn")
        assert result.view.nodes == [0, 1]
        assert len(result.view) > 0

    def test_distinct_node_clocks(self, fleet):
        a = {n: fleet.view.aligner.anchors[n] for n in fleet.view.nodes}
        assert a[0].local_start != a[1].local_start
        assert a[0].rate != a[1].rate

    def test_node_times_land_on_fleet_axis(self, fleet):
        """Re-based spans overlap near the true (staggered) run times,
        not at the nodes' wildly different local offsets."""
        b = fleet.view.batch()
        node = b.node_column()
        for n in fleet.view.nodes:
            t = b.time[(node == n) & b.timed]
            local = fleet.view.node_trace(n).batch()
            lt = local.time[local.timed]
            assert int(t.min()) < 10**7        # staggered start, ~small
            assert int(lt.min()) > 10**5       # local offset is huge

    def test_every_decode_path_identical_per_node(self, fleet):
        for r in fleet.node_results:
            assert_all_paths_identical(load_records(r.trace_path))

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("slurm")

    def test_declared_slots_raise(self, tmp_path):
        spec = NodeSpec(node=0, seed=1, clock_offset=0, clock_rate=1.0,
                        start_base=0)
        for name in ("docker", "mpi"):
            with pytest.raises(NotImplementedError, match="declared slot"):
                get_backend(name).launch([spec], str(tmp_path))
        assert sorted(BACKENDS) == ["docker", "local", "mpi"]

    def test_fleet_run_rejects_unimplemented_backend(self, tmp_path):
        with pytest.raises(NotImplementedError):
            fleet_run(str(tmp_path / "d"), nodes=1, backend="docker")


class TestMerge:
    def test_sidecar_roundtrip(self, tmp_path):
        path = str(tmp_path / "n.k42")
        anchors = NodeAnchors(100, 0, 1100, 990)
        side = write_anchor_sidecar(path, 7, anchors, meta={"seed": 3})
        assert side.endswith(".anchors.json")
        got = read_anchor_sidecar(path)
        assert got == (7, anchors)
        assert read_anchor_sidecar(str(tmp_path / "missing.k42")) is None

    def test_duplicate_node_rejected(self, fleet):
        t = fleet.view.node_trace(0)
        with pytest.raises(ValueError, match="duplicate node id 0"):
            merge_traces([NodeSource(0, t), NodeSource(0, t)])

    def test_merge_nothing_rejected(self):
        with pytest.raises(ValueError, match="nothing to merge"):
            merge_traces([])

    def test_sidecarless_paths_get_identity_positions(self, fleet,
                                                      tmp_path):
        import shutil

        bare = []
        for r in fleet.node_results:
            dst = str(tmp_path / f"bare-{r.node}.k42")
            shutil.copy(r.trace_path, dst)
            bare.append(dst)
        view = merge_paths(bare)
        assert view.nodes == [0, 1]
        assert view.skew_bound() == 0           # identity maps only
        s = view.summary()
        assert not any(s["per_node"][str(n)]["aligned"]
                       for n in view.nodes)

    def test_store_and_file_ingest_agree(self, fleet, tmp_path):
        """A node packed into a plain store merges identically to its
        .k42 file."""
        from repro.store.writer import pack_trace

        r = fleet.node_results[0]
        trace = ingest_path(r.trace_path)
        store_dir = str(tmp_path / "node0.store")
        pack_trace(trace, store_dir)
        via_store = ingest_path(store_dir)
        a = trace.batch().to_arrays()
        b = via_store.batch().to_arrays()
        assert sorted(a) == sorted(b)
        for key in a:
            assert np.array_equal(a[key], b[key]), key

    def test_shm_ingest_scheme(self):
        from repro.shm import ShmTraceRegion

        region = ShmTraceRegion.create(ncpus=2, buffer_words=64,
                                       num_buffers=4)
        name = region.name
        try:
            for cpu in range(2):
                logger = region.logger(cpu)
                for i in range(20):
                    logger.log_words(Major.TEST, 1 + cpu, [i])
            trace = ingest_path(f"shm:{name}")
            b = trace.batch()
            test_rows = b.major == int(Major.TEST)
            assert int(test_rows.sum()) == 40
        finally:
            region.close()
            region.unlink()

    def test_measured_skew_edge_cases(self):
        aligner = FleetAligner.identity([0])
        assert aligner.skew_bound() == 0
        assert measured_fleet_skew(aligner, {0: [1, 2, 3]}) == 0
        two = FleetAligner.identity([0, 1])
        with pytest.raises(ValueError, match="index-aligned"):
            measured_fleet_skew(two, {0: [1, 2], 1: [1]})

    def test_aligner_rejects_uncovered_nodes(self, fleet):
        from repro.fleet.merge import FleetView

        aligner = FleetAligner.identity([0])
        with pytest.raises(ValueError, match="no map for nodes \\[1\\]"):
            FleetView({n: fleet.view.node_trace(n)
                       for n in fleet.view.nodes}, aligner)


class TestToolPortIdentity:
    """Per-node sections of every ported tool == standalone output."""

    def test_kmon(self, fleet):
        from repro.tools.kmon import fleet_render, live_render

        out = fleet_render(fleet.view, width=60)
        for r in fleet.node_results:
            alone = live_render(ingest_path(r.trace_path), width=60)
            assert live_render(fleet.view.node_trace(r.node),
                               width=60) == alone
            assert alone in out
        assert "=== fleet rollup ===" in out
        assert "lanes:" in out

    def test_lockstats(self, fleet):
        from repro.tools.lockstats import fleet_render, live_render

        out = fleet_render(fleet.view)
        for r in fleet.node_results:
            alone = live_render(ingest_path(r.trace_path))
            assert live_render(fleet.view.node_trace(r.node)) == alone
            assert alone in out
        assert "fleet-wide" in out

    def test_pcprofile(self, fleet):
        from repro.tools.pcprofile import fleet_render, live_render

        out = fleet_render(fleet.view)
        for r in fleet.node_results:
            alone = live_render(ingest_path(r.trace_path))
            assert live_render(fleet.view.node_trace(r.node)) == alone
            assert alone in out

    def test_schedstats(self, fleet):
        from repro.tools.schedstats import fleet_render, live_render

        out = fleet_render(fleet.view)
        for r in fleet.node_results:
            alone = live_render(ingest_path(r.trace_path))
            assert live_render(fleet.view.node_trace(r.node)) == alone
            assert alone in out

    def test_rollup_lanes_cover_fleet(self, fleet):
        roll = fleet.view.rollup_trace()
        legend = fleet.view.lane_legend()
        assert [lane for lane, _n, _c in legend] == roll.cpus
        assert len(roll.batch()) == len(fleet.view)


class TestFleetStore:
    @pytest.fixture(scope="class")
    def packed(self, fleet, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("store") / "fleet.store")
        res = pack_fleet_view(fleet.view, out, shard_events=256)
        return out, res

    def test_manifest_declares_fleet(self, packed, fleet):
        store = TraceStore(packed[0], registry=default_registry())
        assert store.nodes == [0, 1]
        assert store.fleet_info["skew_bound"] == fleet.view.skew_bound()
        assert sorted(store.fleet_info["cpus_by_node"]) == ["0", "1"]

    def test_store_roundtrip_is_bit_identical(self, packed, fleet):
        store = TraceStore(packed[0], registry=default_registry())
        a = store.trace().batch().to_arrays()
        b = fleet.view.batch().to_arrays()
        assert sorted(a) == sorted(b)
        for key in a:
            assert np.array_equal(a[key], b[key]), key

    def test_node_predicate_prunes_whole_nodes(self, packed, fleet):
        store = TraceStore(packed[0], registry=default_registry())
        qr = store.query(Predicate(nodes=(1,)))
        assert qr.shards_pruned > 0
        assert qr.shards_read < qr.shards_total
        read0, total0 = qr.node_shards[0]
        read1, total1 = qr.node_shards[1]
        assert read0 == 0 and total0 > 0
        assert read1 == total1 > 0
        # Parity against an unpruned scan of the unified view.
        b = fleet.view.batch()
        brute = select(b, Predicate(nodes=(1,)))
        assert len(qr) == int(brute.sum())

    def test_node_trace_extraction(self, packed, fleet):
        store = TraceStore(packed[0], registry=default_registry())
        for n in fleet.view.nodes:
            nt = store.node_trace(n)
            assert len(nt.batch()) == len(fleet.view.node_trace(n).batch())
        with pytest.raises(ValueError, match="no node 9"):
            store.node_trace(9)

    def test_pack_refuses_overwrite_without_force(self, packed, fleet):
        with pytest.raises(FileExistsError):
            pack_fleet_view(fleet.view, packed[0])
        pack_fleet_view(fleet.view, packed[0], shard_events=256,
                        force=True)

    def test_anomaly_node_column(self, packed, fleet):
        import json
        import os

        with open(os.path.join(packed[0], "manifest.json")) as fh:
            doc = json.load(fh)
        an = doc["anomalies"]
        assert len(an["node"]) == len(an["kind"])
        assert set(an["node"]) <= {0, 1}
