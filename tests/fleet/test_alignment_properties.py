"""Fresh-seed property suite for fleet clock alignment (randomized).

Every node gets an independently random clock — offset, drift rate,
and bounded integer jitter, exactly the model
:meth:`repro.fleet.align.FleetAligner.skew_bound` derives its bound
for — and the suite asserts the three alignment contracts:

* re-basing never reorders a stream (round-trip monotonicity),
* the *measured* residual cross-node skew never exceeds the reported
  bound, and
* the merged unified view is bit-identical under any permutation of
  node ingest order.

Seeds come from ``FLEET_FUZZ_SEEDS`` (comma-separated, default
``0,1,2``) so CI can roll fresh ones per push; every assertion message
echoes the seed for exact re-runs.
"""

import math
import os
import random

import numpy as np
import pytest

from repro.core.columnar import ColumnarTraceReader
from repro.core.facility import TraceFacility
from repro.core.registry import default_registry
from repro.core.timestamps import ManualClock
from repro.fleet import (
    FleetAligner,
    NodeAnchors,
    NodeSource,
    measured_fleet_skew,
    merge_traces,
)

SEEDS = [int(s) for s in
         os.environ.get("FLEET_FUZZ_SEEDS", "0,1,2").split(",")]


def _why(seed):
    return (f"re-run: FLEET_FUZZ_SEEDS={seed} PYTHONPATH=src "
            f"python -m pytest tests/fleet/test_alignment_properties.py")


class ModelClock:
    """``local(t) = floor(a + b*t) + e`` with ``|e| <= jitter``.

    Reads must come at non-decreasing true times; the monotone clamp
    (a hardware counter never runs backwards) keeps the error within
    the jitter band because the noiseless floor is itself
    non-decreasing.
    """

    def __init__(self, rng, offset, drift, jitter):
        self.rng = rng
        self.offset = offset
        self.drift = drift
        self.jitter = jitter
        self._last = None

    def read(self, t):
        val = (math.floor(self.offset + self.drift * t)
               + self.rng.randint(-self.jitter, self.jitter))
        if self._last is not None:
            val = max(val, self._last)
        self._last = val
        return val


def _random_fleet(seed):
    """Anchored aligner + index-aligned readings for a random fleet."""
    rng = random.Random(seed)
    nnodes = rng.randint(2, 5)
    wall_end = rng.randrange(10**6, 10**8)
    sample_ts = sorted(rng.sample(range(1, wall_end), 200))
    anchors, jitters, readings = {}, {}, {}
    for node in range(nnodes):
        clock = ModelClock(
            rng,
            offset=rng.randrange(0, 10**12),
            drift=rng.uniform(0.95, 1.05),
            jitter=rng.randint(0, 3),
        )
        local_start = clock.read(0)
        readings[node] = [clock.read(t) for t in sample_ts]
        local_end = clock.read(wall_end)
        anchors[node] = NodeAnchors(
            local_start=local_start, wall_start=0,
            local_end=local_end, wall_end=wall_end,
        )
        jitters[node] = clock.jitter
    aligner = FleetAligner.for_nodes(range(nnodes), anchors)
    return aligner, jitters, readings


@pytest.mark.parametrize("seed", SEEDS)
def test_rebase_is_monotone_per_stream(seed):
    aligner, _jitters, readings = _random_fleet(seed)
    for node, vals in readings.items():
        t = np.array(vals, dtype=np.int64)
        rb = aligner.rebase(node, t, np.ones(len(t), dtype=bool))
        assert np.all(np.diff(rb) >= 0), \
            f"node {node} stream reordered after rebase; {_why(seed)}"
        # The vectorized path must agree with the exact scalar map.
        scalar = [aligner.to_fleet(node, v) for v in vals]
        assert rb.tolist() == scalar, \
            f"vectorized rebase != scalar map on node {node}; {_why(seed)}"


@pytest.mark.parametrize("seed", SEEDS)
def test_measured_skew_within_reported_bound(seed):
    aligner, jitters, readings = _random_fleet(seed)
    bound = aligner.skew_bound(jitter=jitters)
    measured = measured_fleet_skew(aligner, readings)
    assert measured <= bound, (
        f"measured residual skew {measured} exceeds reported bound "
        f"{bound} (jitters {jitters}); {_why(seed)}")


def _node_records(seed, offset, ncpus=2):
    """One node's trace records on its own local timebase."""
    rng = random.Random(seed)
    clock = ManualClock(start=offset)
    fac = TraceFacility(ncpus=ncpus, buffer_words=128, num_buffers=8,
                        clock=clock)
    fac.enable_all()
    for i in range(rng.randint(80, 160)):
        fac.log(i % ncpus, 2 + (i % 6), i % 16, [i, i * 3][: i % 3])
        clock.advance(rng.randint(1, 9))
    return fac.flush(), clock.now(0)


@pytest.mark.parametrize("seed", SEEDS)
def test_merged_view_invariant_under_ingest_permutation(seed):
    rng = random.Random(seed)
    reg = default_registry()
    sources = []
    for node in range(rng.randint(2, 4)):
        offset = rng.randrange(10**6, 10**10)
        records, local_end = _node_records(seed * 100 + node, offset)
        trace = ColumnarTraceReader(registry=reg).decode_records(records)
        span = local_end - offset + rng.randint(10, 100)
        wall_start = rng.randrange(0, 10**6)
        sources.append(NodeSource(
            node=node, trace=trace,
            anchors=NodeAnchors(
                local_start=offset, wall_start=wall_start,
                local_end=offset + span,
                wall_end=wall_start
                + max(1, round(span * rng.uniform(0.97, 1.03))),
            )))
    ref = merge_traces(sources, registry=reg).batch()
    ref_arrays = ref.to_arrays()
    assert "node" in ref_arrays, _why(seed)
    for trial in range(4):
        shuffled = sources[:]
        rng.shuffle(shuffled)
        got = merge_traces(shuffled, registry=reg).batch().to_arrays()
        assert sorted(got) == sorted(ref_arrays), _why(seed)
        for key in ref_arrays:
            assert np.array_equal(got[key], ref_arrays[key]), (
                f"column {key!r} differs from reference view under "
                f"ingest permutation {trial}; {_why(seed)}")


@pytest.mark.parametrize("seed", SEEDS)
def test_unified_view_keeps_per_stream_order(seed):
    """In the merged batch, each (node, cpu) stream stays in seq order
    and its fleet times are non-decreasing."""
    rng = random.Random(seed)
    reg = default_registry()
    sources = []
    for node in range(rng.randint(2, 3)):
        offset = rng.randrange(10**6, 10**9)
        records, local_end = _node_records(seed * 7 + node, offset)
        trace = ColumnarTraceReader(registry=reg).decode_records(records)
        span = local_end - offset + 50
        sources.append(NodeSource(
            node=node, trace=trace,
            anchors=NodeAnchors(offset, 0, offset + span,
                                max(1, round(span
                                             * rng.uniform(0.97, 1.03))))))
    b = merge_traces(sources, registry=reg).batch()
    node_col = b.node_column()
    for node in np.unique(node_col).tolist():
        for cpu in np.unique(b.cpu[node_col == node]).tolist():
            rows = np.flatnonzero((node_col == node) & (b.cpu == cpu))
            stream_pos = b.seq[rows] * (1 << 32) + b.offset[rows]
            assert np.all(np.diff(stream_pos) > 0), (
                f"stream (node {node}, cpu {cpu}) left seq order in the "
                f"unified view; {_why(seed)}")
            t = b.time[rows][b.timed[rows]]
            assert np.all(np.diff(t) >= 0), (
                f"stream (node {node}, cpu {cpu}) times went backwards "
                f"in the unified view; {_why(seed)}")
