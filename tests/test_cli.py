"""CLI front-end tests (repro-trace)."""

import pytest

from repro.cli import main
from repro.core.crashdump import write_dump
from repro.core.writer import save_records
from repro.workloads import run_contention, run_multiprog


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """A trace file + symbols file + crash dump, like a user would have."""
    d = tmp_path_factory.mktemp("cli")
    kernel, facility, _ = run_contention(ncpus=2, workers_per_cpu=2,
                                         iterations=20)
    trace_path = str(d / "trace.k42")
    save_records(trace_path, facility.flush())
    syms_path = str(d / "syms.json")
    kernel.symbols().save(syms_path)

    # A flight-recorder crash dump from a different run.
    k2, fac2, _ = run_multiprog(ncpus=2, jobs_per_cpu=3, seed=31)
    dump_path = str(d / "core.img")
    with open(dump_path, "wb") as fh:
        write_dump(fac2.controls, fh)
    return dict(trace=trace_path, syms=syms_path, dump=dump_path, dir=d)


def test_info(artifacts, capsys):
    assert main(["info", artifacts["trace"]]) == 0
    out = capsys.readouterr().out
    assert "events:" in out and "time span:" in out and "cpus: [0, 1]" in out


def test_verify(artifacts, capsys):
    assert main(["verify", artifacts["trace"]]) == 0
    assert "trace clean" in capsys.readouterr().out


def test_list_with_filters(artifacts, capsys):
    assert main(["list", artifacts["trace"], "--limit", "15",
                 "--name", "TRC_SYSCALL_ENTER"]) == 0
    out = capsys.readouterr().out
    lines = out.strip().splitlines()
    assert 0 < len(lines) <= 15
    assert all("TRC_SYSCALL_ENTER" in l for l in lines)


def test_kmon_text_and_svg(artifacts, capsys):
    svg_path = str(artifacts["dir"] / "timeline.svg")
    assert main(["kmon", artifacts["trace"], "--width", "50",
                 "--mark", "TRC_USER_RETURNED_MAIN", "--svg", svg_path]) == 0
    out = capsys.readouterr().out
    assert "cpu0" in out and "cpu1" in out
    with open(svg_path) as fh:
        assert fh.read().startswith("<svg")


def test_locks_with_symbols(artifacts, capsys):
    assert main(["locks", artifacts["trace"], "--symbols",
                 artifacts["syms"], "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "top 3 contended locks" in out
    assert "GMalloc" in out or "Dentry" in out


def test_profile_with_symbols(artifacts, capsys):
    assert main(["profile", artifacts["trace"], "--symbols",
                 artifacts["syms"]]) == 0
    out = capsys.readouterr().out
    assert "count method" in out


def test_breakdown_for_pid(artifacts, capsys):
    assert main(["breakdown", artifacts["trace"], "--symbols",
                 artifacts["syms"], "--pid", "1"]) == 0
    out = capsys.readouterr().out
    assert "thread entry points" in out


def test_breakdown_unknown_pid_fails(artifacts, capsys):
    assert main(["breakdown", artifacts["trace"], "--pid", "4242"]) == 1


def test_histogram(artifacts, capsys):
    assert main(["histogram", artifacts["trace"], "--top", "5"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 5


def test_holds(artifacts, capsys):
    assert main(["holds", artifacts["trace"], "--symbols",
                 artifacts["syms"], "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "lock holds analyzed" in out


def test_sched(artifacts, capsys):
    assert main(["sched", artifacts["trace"], "--symbols",
                 artifacts["syms"]]) == 0
    out = capsys.readouterr().out
    assert "CPU time by process" in out


def test_compare(artifacts, capsys):
    # Comparing a trace with itself: neutral report, still renders.
    assert main(["compare", artifacts["trace"], artifacts["trace"],
                 "--symbols", artifacts["syms"]]) == 0
    out = capsys.readouterr().out
    assert "elapsed:" in out and "1.00x" in out


def test_iostats(artifacts, capsys):
    assert main(["iostats", artifacts["trace"]]) == 0
    assert "I/O operations" in capsys.readouterr().out


def test_crashdump(artifacts, capsys):
    assert main(["crashdump", artifacts["dump"], "--last", "6"]) == 0
    out = capsys.readouterr().out
    assert "flight recorder" in out


def test_export_ltt(artifacts, capsys):
    out_path = str(artifacts["dir"] / "cpu0.ltt")
    assert main(["export-ltt", artifacts["trace"], "--cpu", "0",
                 "-o", out_path]) == 0
    from repro.ltt.export import read_ltt

    with open(out_path, "rb") as fh:
        cpu, events = read_ltt(fh.read())
    assert cpu == 0 and events


def test_symbols_roundtrip(artifacts):
    from repro.ksim.kernel import SymbolTable

    sym = SymbolTable.load(artifacts["syms"])
    assert sym.pc_names and sym.lock_names and sym.syscall_names
    again = SymbolTable.from_json(sym.to_json())
    assert again == sym


def test_verify_fails_on_corrupt_trace(artifacts, capsys, tmp_path):
    raw = bytearray(open(artifacts["trace"], "rb").read())
    raw[5000:5100] = b"\x00" * 100  # stomp mid-file
    bad = tmp_path / "bad.k42"
    bad.write_bytes(bytes(raw))
    rc = main(["verify", str(bad)])
    assert rc == 1


def test_doctor_clean(artifacts, capsys):
    assert main(["doctor", artifacts["trace"]]) == 0
    out = capsys.readouterr().out
    assert "file-level damage: none" in out
    assert "trace clean" in out


def test_inject_then_doctor(artifacts, capsys, tmp_path):
    bad = str(tmp_path / "bad.k42")
    assert main(["inject", artifacts["trace"], bad,
                 "--kind", "torn-event", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "injected torn-event" in out

    rc = main(["doctor", bad])
    out = capsys.readouterr().out
    assert rc == 1
    assert "garbled" in out
    assert "recovered-region" in out
    assert "salvaged" in out


def test_inject_file_fault_then_doctor(artifacts, capsys, tmp_path):
    bad = str(tmp_path / "badframe.k42")
    assert main(["inject", artifacts["trace"], bad,
                 "--kind", "frame-magic", "--seed", "2"]) == 0
    capsys.readouterr()
    rc = main(["doctor", bad])
    out = capsys.readouterr().out
    assert rc == 1
    assert "file-level damage (1 issues)" in out
    assert "damaged frame" in out


def test_inject_deterministic(artifacts, tmp_path, capsys):
    a = tmp_path / "a.k42"
    b = tmp_path / "b.k42"
    for p in (a, b):
        assert main(["inject", artifacts["trace"], str(p),
                     "--kind", "header-bitflip", "--seed", "9"]) == 0
    capsys.readouterr()
    assert a.read_bytes() == b.read_bytes()


def _subcommands():
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._subparsers._group_actions:
        return sorted(action.choices)
    return []


@pytest.mark.parametrize("command", _subcommands())
def test_every_subcommand_has_help(command, capsys):
    """`repro-trace <cmd> --help` must exit 0 for every subcommand."""
    with pytest.raises(SystemExit) as exc:
        main([command, "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "usage:" in out


def test_help_lists_every_subcommand(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    for command in _subcommands():
        assert command in out


def test_check_clean_run(capsys):
    assert main(["check", "--writers", "2", "--events", "1",
                 "--preemption-bound", "1"]) == 0
    out = capsys.readouterr().out
    assert "all interleavings pass" in out


def test_check_list_mutants(capsys):
    assert main(["check", "--list-mutants"]) == 0
    out = capsys.readouterr().out
    assert "reset-on-book" in out and "non-atomic-reserve" in out


def test_check_mutant_save_replay_cycle(capsys, tmp_path):
    """Catch a mutant, save its counterexample, replay it byte-for-byte."""
    cex = str(tmp_path / "cex.json")
    assert main(["check", "--mutant", "non-atomic-reserve",
                 "--save", cex]) == 1
    out = capsys.readouterr().out
    assert "VIOLATION" in out or "double-write" in out
    assert "--replay" in out  # re-run hint printed

    assert main(["check", "--replay", cex]) == 1
    out = capsys.readouterr().out
    assert "reproduced: double-write" in out


def test_check_replay_clean_script(capsys, tmp_path):
    """A clean schedule script replays to exit 0."""
    from repro.check import CheckConfig, run_schedule, save_script
    from repro.check.script import ScheduleScript

    outcome = run_schedule(CheckConfig(writers=2, events=1))
    path = str(tmp_path / "clean.json")
    save_script(ScheduleScript.from_outcome(outcome), path)
    assert main(["check", "--replay", path]) == 0
    assert "no violation" in capsys.readouterr().out


def test_check_rejects_bad_config(capsys):
    assert main(["check", "--writers", "4", "--events", "8",
                 "--num-buffers", "2"]) == 2
    assert "bad configuration" in capsys.readouterr().err


def test_check_random_mode(capsys):
    assert main(["check", "--mode", "random", "--writers", "2",
                 "--events", "1", "--schedules", "25", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "randomized schedules" in out


def test_strict_flag_stops_at_first_garble(artifacts, capsys, tmp_path):
    bad = str(tmp_path / "bad.k42")
    assert main(["inject", artifacts["trace"], bad,
                 "--kind", "torn-event", "--seed", "5"]) == 0
    capsys.readouterr()
    assert main(["info", bad]) == 0
    loose = capsys.readouterr().out
    assert main(["info", bad, "--strict"]) == 0
    strict = capsys.readouterr().out

    def events(out):
        line = next(l for l in out.splitlines() if l.startswith("events:"))
        return int(line.split()[1])

    assert events(loose) > events(strict)


_COLUMNAR_COMMANDS = ("info", "list", "kmon", "locks", "profile",
                      "breakdown", "sched")


@pytest.mark.parametrize("command", _COLUMNAR_COMMANDS)
def test_columnar_flag_in_help(command, capsys):
    """Every ported subcommand advertises --columnar/--no-columnar."""
    with pytest.raises(SystemExit) as exc:
        main([command, "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "--columnar" in out and "--no-columnar" in out


@pytest.mark.parametrize("command", _COLUMNAR_COMMANDS)
def test_columnar_output_identical(command, artifacts, capsys):
    """--columnar (default) and --no-columnar print the same report."""
    argv = [command, artifacts["trace"]]
    if command == "breakdown":
        argv += ["--symbols", artifacts["syms"]]
    assert main(argv + ["--columnar"]) == 0
    columnar = capsys.readouterr().out
    assert main(argv + ["--no-columnar"]) == 0
    scalar = capsys.readouterr().out
    assert main(argv) == 0                      # columnar is the default
    default = capsys.readouterr().out
    assert columnar == scalar == default


class TestFleetCli:
    def test_help_smoke(self, capsys):
        """merge / fleet-run are registered subcommands with help."""
        for command in ("merge", "fleet-run"):
            assert command in _subcommands()
            with pytest.raises(SystemExit) as exc:
                main([command, "--help"])
            assert exc.value.code == 0
            assert "usage:" in capsys.readouterr().out

    def test_fleet_run_merge_and_node_query(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(["fleet-run", "-o", str(run_dir), "--nodes", "2",
                     "--iterations", "6"]) == 0
        out = capsys.readouterr().out
        assert "fleet: 2 nodes" in out and "residual skew bound" in out

        paths = sorted(str(p) for p in run_dir.glob("*.k42"))
        assert len(paths) == 2
        store = str(tmp_path / "fleet.store")
        assert main(["merge", *paths, "-o", store,
                     "--tool", "locks"]) == 0
        out = capsys.readouterr().out
        assert "=== node 0:" in out and "=== node 1:" in out
        assert "=== fleet rollup ===" in out
        assert "packed fleet store:" in out

        assert main(["query", store, "--node", "1", "--limit", "3"]) == 0
        cap = capsys.readouterr()
        assert "pruned by statistics" in cap.err
        assert "node 0: read 0/" in cap.err
        assert "node 1: read" in cap.err

    def test_fleet_run_unimplemented_backend(self, tmp_path, capsys):
        assert main(["fleet-run", "-o", str(tmp_path / "x"),
                     "--backend", "docker"]) == 2
        assert "declared slot" in capsys.readouterr().err
