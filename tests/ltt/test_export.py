"""LTT-format converter tests (§5's future-work item, implemented)."""

import io
import struct

import pytest

from repro.ltt.export import (
    LTT_CUSTOM,
    LTT_FILE_SYSTEM,
    LTT_SCHEDCHANGE,
    LTT_SYSCALL_ENTRY,
    LTT_SYSCALL_EXIT,
    LTT_TRAP_ENTRY,
    export_ltt_bytes,
    read_ltt,
)
from repro.workloads import run_multiprog


@pytest.fixture(scope="module")
def k42_trace():
    kernel, facility, _ = run_multiprog(ncpus=2, jobs_per_cpu=4, seed=21)
    return kernel, facility.decode()


def test_roundtrip_counts_and_order(k42_trace):
    kernel, trace = k42_trace
    data = export_ltt_bytes(trace, cpu=0)
    cpu, events = read_ltt(data)
    assert cpu == 0
    source = [e for e in trace.events(0) if not e.is_control]
    assert len(events) == len(source)
    times = [e.time_us for e in events]
    assert times == sorted(times)


def test_timestamps_match_microseconds(k42_trace):
    kernel, trace = k42_trace
    data = export_ltt_bytes(trace, cpu=0)
    _, events = read_ltt(data)
    source = [e for e in trace.events(0) if not e.is_control]
    for ltt_e, k42_e in zip(events, source):
        assert ltt_e.time_us == k42_e.time // 1_000


def test_core_vocabulary_mapped(k42_trace):
    """Scheduling, syscall, trap, and fs events land on LTT's own ids —
    the point of the conversion is that LTT's visualizer understands
    them natively."""
    kernel, trace = k42_trace
    _, events = read_ltt(export_ltt_bytes(trace, cpu=0))
    ids = {e.ltt_id for e in events}
    assert LTT_SCHEDCHANGE in ids
    assert LTT_SYSCALL_ENTRY in ids and LTT_SYSCALL_EXIT in ids
    assert LTT_TRAP_ENTRY in ids
    assert LTT_FILE_SYSTEM in ids


def test_syscall_payloads_decode(k42_trace):
    kernel, trace = k42_trace
    _, events = read_ltt(export_ltt_bytes(trace, cpu=0))
    entries = [e for e in events if e.ltt_id == LTT_SYSCALL_ENTRY]
    assert entries
    for e in entries[:20]:
        pid, num = struct.unpack("<QQ", e.payload)
        assert pid in kernel.processes
        assert num in kernel.symbols().syscall_names


def test_k42_specific_events_ride_through_as_custom(k42_trace):
    """Nothing is dropped: K42 events without an LTT equivalent (lock
    contention, PPC, user marks) export as custom events carrying the
    original ids."""
    kernel, trace = k42_trace
    source = [e for e in trace.events(0) if not e.is_control]
    _, events = read_ltt(export_ltt_bytes(trace, cpu=0))
    customs = [e for e in events if e.ltt_id == LTT_CUSTOM]
    ppc_calls = [e for e in source if e.name == "TRC_EXCEPTION_PPC_CALL"]
    assert customs
    majors = set()
    for e in customs:
        major, minor = struct.unpack("<BH", e.payload[:3])
        majors.add(major)
    from repro.core.majors import Major
    assert Major.USER in majors or Major.APP in majors or Major.EXC in majors


def test_bad_input_rejected():
    with pytest.raises(ValueError):
        read_ltt(b"short")
    with pytest.raises(ValueError):
        read_ltt(b"NOTLTT00" + b"\x00" * 16)


def test_truncated_event_detected(k42_trace):
    kernel, trace = k42_trace
    data = export_ltt_bytes(trace, cpu=0)
    with pytest.raises(ValueError):
        read_ltt(data[:-3])


def test_per_cpu_files(k42_trace):
    """LTT keeps one file per CPU; both CPUs export independently."""
    kernel, trace = k42_trace
    for cpu in (0, 1):
        c, events = read_ltt(export_ltt_bytes(trace, cpu=cpu))
        assert c == cpu
        assert events
