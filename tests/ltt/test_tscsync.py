"""TSC interpolation tests (§4.1's x86 timestamp synchronization)."""

import pytest

from repro.core.timestamps import DriftingTscClock
from repro.ltt import (
    TscAnchors,
    TscInterpolator,
    max_pairwise_skew,
    take_anchors,
)


def make_clock():
    base = [0]
    clock = DriftingTscClock(
        offsets=[0, 123_456, 999_999],
        rates=[1.0, 1.0003, 0.9995],
        base=lambda: base[0],
    )
    return clock, base


def test_anchor_validation():
    with pytest.raises(ValueError):
        TscAnchors(tsc_start=100, wall_start=0, tsc_end=100, wall_end=10)
    with pytest.raises(ValueError):
        TscInterpolator({})


def test_interpolation_recovers_wall_time_exactly_at_anchors():
    clock, base = make_clock()
    anchors = take_anchors(clock, 0, 10**9)
    interp = TscInterpolator(anchors)
    for cpu in range(clock.ncpus):
        a = anchors[cpu]
        assert interp.to_wall(cpu, a.tsc_start) == a.wall_start
        assert interp.to_wall(cpu, a.tsc_end) == a.wall_end


def test_interpolation_midpoint_accuracy():
    clock, base = make_clock()
    anchors = take_anchors(clock, 0, 10**9)
    interp = TscInterpolator(anchors)
    t = 5 * 10**8
    for cpu in range(clock.ncpus):
        tsc = int(clock.offsets[cpu] + clock.rates[cpu] * t)
        # Within rounding of the true time despite offset+drift.
        assert abs(interp.to_wall(cpu, tsc) - t) <= 2


def test_cross_cpu_skew_small_after_interpolation():
    clock, base = make_clock()
    anchors = take_anchors(clock, 0, 10**9)
    interp = TscInterpolator(anchors)
    skew = max_pairwise_skew(
        interp, clock, sample_points=[10**6 * k for k in range(0, 1000, 37)]
    )
    assert skew <= 4  # rounding only


class TestAnchorEdgeCases:
    """The degenerate anchor shapes the fleet merge layer leans on."""

    def test_single_cpu_anchors(self):
        """One CPU is a valid (if pointless) interpolation universe."""
        interp = TscInterpolator({0: TscAnchors(100, 0, 1100, 1000)})
        assert interp.cpus == [0]
        assert interp.to_wall(0, 600) == 500

    def test_skew_of_single_stream_is_zero(self):
        """A stream cannot disagree with itself."""
        clock = DriftingTscClock(offsets=[5_000], rates=[1.0007],
                                 base=lambda: 0)
        interp = TscInterpolator(take_anchors(clock, 0, 10**6))
        assert max_pairwise_skew(interp, clock,
                                 sample_points=range(0, 10**6, 997)) == 0

    def test_zero_tsc_span_raises(self):
        with pytest.raises(ValueError, match="end anchor"):
            TscAnchors(tsc_start=100, wall_start=0,
                       tsc_end=100, wall_end=10)

    def test_negative_tsc_span_raises(self):
        with pytest.raises(ValueError, match="end anchor"):
            TscAnchors(tsc_start=100, wall_start=0,
                       tsc_end=50, wall_end=10)

    def test_zero_wall_span_raises(self):
        # Used to build a silently-constant map; now fails loudly like
        # the tsc-span check.
        with pytest.raises(ValueError, match="wall anchors"):
            TscAnchors(tsc_start=0, wall_start=10,
                       tsc_end=100, wall_end=10)

    def test_negative_wall_span_raises(self):
        with pytest.raises(ValueError, match="wall anchors"):
            TscAnchors(tsc_start=0, wall_start=10,
                       tsc_end=100, wall_end=5)

    def test_extrapolation_outside_anchor_range(self):
        """Events before the first / after the last anchor still map
        linearly — a trace can hold events outside the gettimeofday
        bracket."""
        a = TscAnchors(tsc_start=1000, wall_start=0,
                       tsc_end=3000, wall_end=1000)  # rate 0.5
        interp = TscInterpolator({0: a})
        assert interp.to_wall(0, 0) == -500       # before the bracket
        assert interp.to_wall(0, 5000) == 2000    # after it
        clock = DriftingTscClock(offsets=[123], rates=[1.01],
                                 base=lambda: 0)
        interp = TscInterpolator(take_anchors(clock, 10**6, 2 * 10**6))
        for t in (0, 5 * 10**5, 3 * 10**6):
            tsc = int(clock.offsets[0] + clock.rates[0] * t)
            assert abs(interp.to_wall(0, tsc) - t) <= 2


def test_uncorrected_skew_is_large():
    """Without interpolation, raw tsc values disagree wildly — the
    problem §4.1's scheme exists to solve."""
    clock, base = make_clock()
    t = 10**9
    raw = [int(clock.offsets[c] + clock.rates[c] * t) for c in range(3)]
    assert max(raw) - min(raw) > 100_000
