"""TSC interpolation tests (§4.1's x86 timestamp synchronization)."""

import pytest

from repro.core.timestamps import DriftingTscClock
from repro.ltt import (
    TscAnchors,
    TscInterpolator,
    max_pairwise_skew,
    take_anchors,
)


def make_clock():
    base = [0]
    clock = DriftingTscClock(
        offsets=[0, 123_456, 999_999],
        rates=[1.0, 1.0003, 0.9995],
        base=lambda: base[0],
    )
    return clock, base


def test_anchor_validation():
    with pytest.raises(ValueError):
        TscAnchors(tsc_start=100, wall_start=0, tsc_end=100, wall_end=10)
    with pytest.raises(ValueError):
        TscInterpolator({})


def test_interpolation_recovers_wall_time_exactly_at_anchors():
    clock, base = make_clock()
    anchors = take_anchors(clock, 0, 10**9)
    interp = TscInterpolator(anchors)
    for cpu in range(clock.ncpus):
        a = anchors[cpu]
        assert interp.to_wall(cpu, a.tsc_start) == a.wall_start
        assert interp.to_wall(cpu, a.tsc_end) == a.wall_end


def test_interpolation_midpoint_accuracy():
    clock, base = make_clock()
    anchors = take_anchors(clock, 0, 10**9)
    interp = TscInterpolator(anchors)
    t = 5 * 10**8
    for cpu in range(clock.ncpus):
        tsc = int(clock.offsets[cpu] + clock.rates[cpu] * t)
        # Within rounding of the true time despite offset+drift.
        assert abs(interp.to_wall(cpu, tsc) - t) <= 2


def test_cross_cpu_skew_small_after_interpolation():
    clock, base = make_clock()
    anchors = take_anchors(clock, 0, 10**9)
    interp = TscInterpolator(anchors)
    skew = max_pairwise_skew(
        interp, clock, sample_points=[10**6 * k for k in range(0, 1000, 37)]
    )
    assert skew <= 4  # rounding only


def test_uncorrected_skew_is_large():
    """Without interpolation, raw tsc values disagree wildly — the
    problem §4.1's scheme exists to solve."""
    clock, base = make_clock()
    t = 10**9
    raw = [int(clock.offsets[c] + clock.rates[c] * t) for c in range(3)]
    assert max(raw) - min(raw) > 100_000
