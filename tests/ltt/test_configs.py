"""LTT ablation configuration tests."""

import threading

import pytest

from repro.core.majors import Major
from repro.core.registry import default_registry
from repro.core.stream import TraceReader
from repro.ltt import LTT_CONFIGS, build_logger_set, k42_ltt, original_ltt
from repro.ltt.configs import K42_STYLE, ORIGINAL, LttConfig


def test_config_table_shape():
    assert len(LTT_CONFIGS) == 4
    assert LTT_CONFIGS[0] == ORIGINAL
    assert LTT_CONFIGS[-1] == K42_STYLE
    assert original_ltt().name == "original"
    assert k42_ltt().lockless


def test_lockless_requires_percpu():
    bad = LttConfig("bad", lockless=True, per_cpu_buffers=False,
                    cheap_timestamps=True)
    with pytest.raises(ValueError):
        build_logger_set(bad, ncpus=2)


@pytest.mark.parametrize("config", LTT_CONFIGS, ids=lambda c: c.name)
def test_every_config_logs_correctly(config):
    ncpus = 3
    ls = build_logger_set(config, ncpus=ncpus, buffer_words=256,
                          num_buffers=8, irq_disable_iters=5)
    n_controls = ncpus if config.per_cpu_buffers else 1
    assert len(ls.controls) == n_controls
    per_thread = 200
    barrier = threading.Barrier(ncpus)

    def work(cpu):
        barrier.wait()
        for i in range(per_thread):
            ls.loggers[cpu].log2(Major.TEST, 2, cpu, i)

    threads = [threading.Thread(target=work, args=(c,)) for c in range(ncpus)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    trace = TraceReader(registry=default_registry()).decode_records(ls.flush())
    evs = trace.filter(major=Major.TEST)
    assert len(evs) == ncpus * per_thread
    garbled = [a for a in trace.anomalies if a.kind == "garbled"]
    assert garbled == []


def test_shared_buffer_merges_cpu_streams_into_one_control():
    ls = build_logger_set(ORIGINAL, ncpus=4, buffer_words=256, num_buffers=8)
    for cpu in range(4):
        ls.loggers[cpu].log1(Major.TEST, 1, cpu)
    trace = TraceReader(registry=default_registry()).decode_records(ls.flush())
    # All events appear in control 0's stream (one shared global buffer).
    assert trace.ncpus == 1
    assert len(trace.filter(major=Major.TEST)) == 4
