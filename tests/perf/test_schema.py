"""The versioned report schema validator."""

import copy

from repro.perf import SCHEMA_VERSION, validate_report

from .conftest import make_doc, make_entry


def valid_doc():
    return make_doc([make_entry("a.x", 100.0), make_entry("a.y", 200.0)])


def test_valid_document_passes():
    assert validate_report(valid_doc()) == []


def test_non_object_rejected():
    assert validate_report([]) != []
    assert validate_report("nope") != []
    assert validate_report(None) != []


def test_missing_top_level_keys_reported():
    doc = valid_doc()
    del doc["environment"]
    del doc["created"]
    problems = validate_report(doc)
    assert any("environment" in p for p in problems)
    assert any("created" in p for p in problems)


def test_future_schema_version_rejected():
    doc = valid_doc()
    doc["schema_version"] = SCHEMA_VERSION + 1
    assert any("newer than supported" in p for p in validate_report(doc))


def test_wrong_kind_rejected():
    doc = valid_doc()
    doc["kind"] = "something-else"
    assert any("kind" in p for p in validate_report(doc))


def test_bool_is_not_a_valid_number():
    doc = valid_doc()
    doc["benchmarks"][0]["median_ns"] = True
    assert any("median_ns" in p for p in validate_report(doc))


def test_missing_bench_keys_reported():
    doc = valid_doc()
    del doc["benchmarks"][0]["samples_ns"]
    del doc["benchmarks"][1]["tolerance"]
    problems = validate_report(doc)
    assert any("benchmarks[0]" in p and "samples_ns" in p for p in problems)
    assert any("benchmarks[1]" in p and "tolerance" in p for p in problems)


def test_duplicate_names_rejected():
    doc = make_doc([make_entry("dup.n", 1.0), make_entry("dup.n", 2.0)])
    assert any("duplicates" in p for p in validate_report(doc))


def test_negative_and_empty_samples_rejected():
    doc = valid_doc()
    doc["benchmarks"][0]["samples_ns"] = []
    assert any("non-empty" in p for p in validate_report(doc))
    doc = valid_doc()
    doc["benchmarks"][0]["samples_ns"] = [1.0, -2.0]
    assert any(">= 0" in p for p in validate_report(doc))


def test_nonpositive_tolerance_rejected():
    doc = valid_doc()
    doc["benchmarks"][0]["tolerance"] = 0
    assert any("tolerance" in p for p in validate_report(doc))


def test_bad_narratives_rejected():
    doc = valid_doc()
    doc["narratives"] = {"table": 42}
    assert any("narratives" in p for p in validate_report(doc))


def test_validation_does_not_mutate_document():
    doc = valid_doc()
    snapshot = copy.deepcopy(doc)
    validate_report(doc)
    assert doc == snapshot
