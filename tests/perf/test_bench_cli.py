"""End-to-end: the `repro-trace bench` subcommand over the real
benchmarks directory — the quick smoke the perf-gate CI job relies on."""

from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.perf import load_report, validate_report

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.mark.skipif(not BENCH_DIR.is_dir(),
                    reason="benchmarks directory not present")
def test_bench_quick_smoke_over_event_cost(tmp_path, capsys):
    """At least 3 registered benchmarks run, and the emitted JSON is
    schema-valid and loadable."""
    out = tmp_path / "BENCH_smoke.json"
    rc = cli_main(["bench", "--quick", "--filter", "event_cost.",
                   "--dir", str(BENCH_DIR), "--output", str(out)])
    assert rc == 0
    doc = load_report(out)          # raises on schema problems
    assert validate_report(doc) == []
    names = [e["name"] for e in doc["benchmarks"]]
    assert len([n for n in names if n.startswith("event_cost.")]) >= 3
    # The machine-speed yardstick rides along even under --filter.
    assert "_calibration.spin" in names
    assert doc["quick"] is True
    assert doc["filter"] == "event_cost."
    stdout = capsys.readouterr().out
    assert "report written to" in stdout


@pytest.mark.skipif(not BENCH_DIR.is_dir(),
                    reason="benchmarks directory not present")
def test_bench_list_shows_registered_benchmarks(capsys):
    rc = cli_main(["bench", "--list", "--dir", str(BENCH_DIR)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "event_cost.one_word" in out
    assert "[quick]" in out and "tolerance" in out


@pytest.mark.skipif(not BENCH_DIR.is_dir(),
                    reason="benchmarks directory not present")
def test_bench_gate_passes_against_itself(tmp_path, capsys):
    """A run compared against its own output must pass the gate."""
    first = tmp_path / "BENCH_first.json"
    rc = cli_main(["bench", "--quick", "--filter", "event_cost.cost_model",
                   "--dir", str(BENCH_DIR), "--output", str(first)])
    assert rc == 0
    second = tmp_path / "BENCH_second.json"
    rc = cli_main(["bench", "--quick", "--filter", "event_cost.cost_model",
                   "--dir", str(BENCH_DIR), "--output", str(second),
                   "--baseline", str(first)])
    assert rc == 0
    assert "PERF GATE: ok" in capsys.readouterr().out
