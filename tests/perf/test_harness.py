"""The @benchmark registry, timing protocol, and report emission."""

import json

import pytest

from repro.perf import (
    CALIBRATION_BENCH,
    Bench,
    BenchmarkRegistry,
    DuplicateBenchmarkError,
    QUICK_TIER,
    REGISTRY,
    Tier,
    benchmark,
    mad,
    measure,
    median,
    run_benchmarks,
    save_report,
    validate_report,
)
from repro.perf import report as report_mod
from repro.perf.harness import BenchmarkDef


# ---------------------------------------------------------------- timing

def test_median_and_mad_definitions():
    assert median([3, 1, 2]) == 2
    assert median([1, 2, 3, 4]) == 2.5
    assert mad([1, 1, 1]) == 0
    # values {1,2,9}: median 2, deviations {1,0,7} -> MAD 1
    assert mad([1, 2, 9]) == 1


def test_median_rejects_empty():
    with pytest.raises(ValueError):
        median([])


def test_measure_produces_robust_stats():
    timing = measure(lambda: sum(range(100)), repeats=5, warmup=1,
                     min_time_s=0.001, max_total_s=5.0)
    assert timing.repeats == 5
    assert timing.inner_loops >= 1
    assert timing.median_ns > 0
    assert timing.mad_ns >= 0
    assert timing.min_ns <= timing.median_ns <= timing.max_ns
    assert timing.last_return == sum(range(100))


def test_measure_calibrates_fast_kernels_to_many_loops():
    timing = measure(lambda: None, repeats=3, warmup=0,
                     min_time_s=0.002, max_total_s=5.0)
    assert timing.inner_loops > 100  # a no-op needs batching


def test_measure_respects_total_budget():
    import time

    timing = measure(lambda: time.sleep(0.02), repeats=50, warmup=0,
                     min_time_s=0.001, max_total_s=0.15)
    # The budget cut the repeat count but kept enough for a median.
    assert 3 <= timing.repeats < 50


# -------------------------------------------------------------- registry

def test_decorator_registers_with_defaults():
    reg = BenchmarkRegistry()

    @benchmark("grp.thing", quick=True, registry=reg)
    def my_bench(b):
        b(lambda: None)

    assert "grp.thing" in reg
    defn = reg.get("grp.thing")
    assert defn.group == "grp"
    assert defn.quick is True
    assert defn.tolerance == pytest.approx(0.25)


def test_duplicate_name_with_different_function_rejected():
    reg = BenchmarkRegistry()

    @benchmark("dup.name", registry=reg)
    def first(b):
        b(lambda: None)

    with pytest.raises(DuplicateBenchmarkError):
        @benchmark("dup.name", registry=reg)
        def second(b):
            b(lambda: None)


def test_reregistering_same_function_is_idempotent():
    reg = BenchmarkRegistry()

    def kernel(b):
        b(lambda: None)

    benchmark("re.same", registry=reg)(kernel)
    benchmark("re.same", registry=reg)(kernel)
    assert len(reg) == 1


def test_invalid_tolerance_rejected():
    with pytest.raises(ValueError):
        benchmark("bad.tol", tolerance=0)


def test_select_by_pattern_glob_and_tier():
    reg = BenchmarkRegistry()
    for name, quick in (("a.one", True), ("a.two", False), ("b.one", True)):
        reg.register(BenchmarkDef(name=name, func=lambda b: None,
                                  group=name.split(".")[0], quick=quick,
                                  tolerance=0.25, module="m"))
    assert [d.name for d in reg.select(pattern="a.")] == ["a.one", "a.two"]
    assert [d.name for d in reg.select(pattern="a.*")] == ["a.one", "a.two"]
    assert [d.name for d in reg.select(pattern="*.one")] == ["a.one", "b.one"]
    assert [d.name for d in reg.select(quick=True)] == ["a.one", "b.one"]
    assert [d.name for d in reg.select(pattern="a.", quick=True)] == ["a.one"]


# ----------------------------------------------------------- run + report

def _quick_tier():
    return Tier(repeats=3, warmup=0, min_time_s=0.0005, max_total_s=1.0)


def test_run_benchmarks_emits_schema_valid_report(tmp_path):
    reg = BenchmarkRegistry()

    @benchmark("t.fast", quick=True, registry=reg)
    def fast(b):
        b(lambda: 1 + 1)
        b.note("answer", 2)

    doc = run_benchmarks(registry=reg, quick=True, tier=_quick_tier())
    assert validate_report(doc) == []
    names = [e["name"] for e in doc["benchmarks"]]
    assert names == ["t.fast"]
    entry = doc["benchmarks"][0]
    assert entry["notes"] == {"answer": 2}
    assert entry["median_ns"] > 0
    assert doc["quick"] is True
    assert doc["environment"]["python"]

    out = save_report(doc, tmp_path / "BENCH_test.json")
    reloaded = json.loads(out.read_text())
    assert validate_report(reloaded) == []


def test_run_benchmarks_includes_calibration_from_global_registry():
    doc = run_benchmarks(quick=True, filter_pattern="no-such-bench-xyz",
                         tier=_quick_tier())
    assert [e["name"] for e in doc["benchmarks"]] == [CALIBRATION_BENCH]


def test_benchmark_that_never_times_is_an_error():
    reg = BenchmarkRegistry()

    @benchmark("t.lazy", quick=True, registry=reg)
    def lazy(b):
        pass

    with pytest.raises(RuntimeError, match="never invoked"):
        run_benchmarks(registry=reg, quick=True, tier=_quick_tier())


def test_benchmark_exception_carries_name():
    reg = BenchmarkRegistry()

    @benchmark("t.boom", quick=True, registry=reg)
    def boom(b):
        raise ValueError("kaboom")

    with pytest.raises(RuntimeError, match="t.boom"):
        run_benchmarks(registry=reg, quick=True, tier=_quick_tier())


def test_quick_flag_reaches_bench_handle():
    reg = BenchmarkRegistry()
    seen = {}

    @benchmark("t.tiered", quick=True, registry=reg)
    def tiered(b):
        seen["quick"] = b.quick
        b(lambda: None)

    run_benchmarks(registry=reg, quick=True, tier=_quick_tier())
    assert seen["quick"] is True
    run_benchmarks(registry=reg, quick=False, tier=_quick_tier())
    assert seen["quick"] is False


def test_narratives_are_captured_into_report(tmp_path):
    reg = BenchmarkRegistry()
    previous_dir = report_mod.RESULTS_DIR
    report_mod.set_results_dir(tmp_path / "results")

    @benchmark("t.story", quick=True, registry=reg)
    def story(b):
        report_mod.write_result("story_table", "hello narrative")
        b(lambda: None)

    try:
        doc = run_benchmarks(registry=reg, quick=True, tier=_quick_tier())
        assert doc["narratives"] == {"story_table": "hello narrative"}
        # The .txt rendering is (re)written when the report is saved.
        (tmp_path / "results" / "story_table.txt").unlink()
        save_report(doc, tmp_path / "BENCH_x.json")
        assert (tmp_path / "results" / "story_table.txt").read_text() \
            == "hello narrative\n"
    finally:
        report_mod.set_results_dir(previous_dir)


def test_save_report_refuses_invalid_document(tmp_path):
    with pytest.raises(ValueError, match="schema-invalid"):
        save_report({"schema_version": 1}, tmp_path / "BENCH_bad.json")


def test_global_registry_has_calibration_benchmark():
    assert CALIBRATION_BENCH in REGISTRY
    defn = REGISTRY.get(CALIBRATION_BENCH)
    assert defn.quick is True
    bench = Bench(defn, QUICK_TIER, quick=True)
    defn.func(bench)
    assert bench.timing is not None and bench.timing.median_ns > 0
