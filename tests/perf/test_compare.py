"""Deterministic regression verdicts from compare.py."""

import copy
import json

import pytest

from repro.perf import CALIBRATION_BENCH, compare_reports, format_comparison
from repro.perf.compare import main as compare_main

from .conftest import make_doc, make_entry


def calibrated_doc(extra=(), spin_ns=1000.0):
    entries = [make_entry(CALIBRATION_BENCH, spin_ns, group="_calibration",
                          tolerance=1.0)]
    entries.extend(extra)
    return make_doc(entries)


def baseline_doc():
    return calibrated_doc([
        make_entry("a.x", 500.0),
        make_entry("a.y", 2000.0, tolerance=0.5),
    ])


def test_identical_run_passes():
    base = baseline_doc()
    cmp = compare_reports(copy.deepcopy(base), base)
    assert cmp.ok()
    assert not cmp.regressions and not cmp.speedups
    assert all(v.status == "ok" for v in cmp.verdicts)


def test_synthetic_2x_slowdown_fails():
    base = baseline_doc()
    run = copy.deepcopy(base)
    run["benchmarks"][1]["median_ns"] = 1000.0  # a.x: 500 -> 1000
    cmp = compare_reports(run, base)
    assert not cmp.ok()
    assert [v.name for v in cmp.regressions] == ["a.x"]
    assert cmp.regressions[0].ratio == pytest.approx(2.0)


def test_10pct_jitter_passes():
    base = baseline_doc()
    run = copy.deepcopy(base)
    run["benchmarks"][1]["median_ns"] = 550.0
    run["benchmarks"][2]["median_ns"] = 1800.0
    assert compare_reports(run, base).ok()


def test_speedups_reported_not_fatal():
    base = baseline_doc()
    run = copy.deepcopy(base)
    run["benchmarks"][1]["median_ns"] = 100.0
    cmp = compare_reports(run, base)
    assert cmp.ok()
    assert [v.name for v in cmp.speedups] == ["a.x"]


def test_per_bench_tolerance_band_honored():
    base = baseline_doc()
    run = copy.deepcopy(base)
    # +40%: outside a.x's default 25% band, inside a.y's 50% band.
    run["benchmarks"][1]["median_ns"] = 700.0
    run["benchmarks"][2]["median_ns"] = 2800.0
    cmp = compare_reports(run, base)
    assert [v.name for v in cmp.regressions] == ["a.x"]


def test_machine_speed_normalization_absorbs_uniform_slowdown():
    base = baseline_doc()
    run = copy.deepcopy(base)
    for entry in run["benchmarks"]:
        entry["median_ns"] *= 2.0  # a uniformly 2x slower machine
    cmp = compare_reports(run, base)
    assert cmp.normalized and cmp.scale == pytest.approx(2.0)
    assert cmp.ok()
    # ...but with normalization off it reads as a regression.
    assert not compare_reports(run, base, normalize=False).ok()


def test_normalization_does_not_hide_real_regression():
    base = baseline_doc()
    run = copy.deepcopy(base)
    for entry in run["benchmarks"]:
        entry["median_ns"] *= 2.0
    run["benchmarks"][1]["median_ns"] *= 2.0  # a.x 4x total: 2x real
    cmp = compare_reports(run, base)
    assert [v.name for v in cmp.regressions] == ["a.x"]


def test_normalization_off_without_calibration_benchmark():
    base = make_doc([make_entry("a.x", 500.0)])
    run = copy.deepcopy(base)
    cmp = compare_reports(run, base)
    assert not cmp.normalized and cmp.scale == 1.0
    assert cmp.ok()


def test_calibration_benchmark_itself_never_gated():
    base = baseline_doc()
    run = copy.deepcopy(base)
    run["benchmarks"][0]["median_ns"] = 10_000.0  # spin 10x slower
    run["benchmarks"][1]["median_ns"] = 5_000.0   # matches the 10x scale
    run["benchmarks"][2]["median_ns"] = 20_000.0
    cmp = compare_reports(run, base)
    assert cmp.ok()
    assert all(v.name != CALIBRATION_BENCH for v in cmp.verdicts)


def test_new_and_missing_benchmarks_reported():
    base = baseline_doc()
    run = calibrated_doc([make_entry("a.x", 500.0),
                          make_entry("a.z", 42.0)])
    cmp = compare_reports(run, base)
    assert cmp.new_benchmarks == ["a.z"]
    assert cmp.missing_benchmarks == ["a.y"]
    assert cmp.ok()                      # subset runs are legitimate...
    assert not cmp.ok(require_all=True)  # ...unless the gate demands all


def test_mad_guard_absorbs_jitter_on_tiny_baselines():
    base = calibrated_doc([make_entry("a.fast", 20.0, mad_ns=5.0)])
    run = copy.deepcopy(base)
    # 20ns -> 28ns is +40%, but inside 3*MAD of a noisy measurement.
    run["benchmarks"][1]["median_ns"] = 28.0
    assert compare_reports(run, base).ok()


def test_format_comparison_mentions_verdicts():
    base = baseline_doc()
    run = copy.deepcopy(base)
    run["benchmarks"][1]["median_ns"] = 5000.0
    text = format_comparison(compare_reports(run, base))
    assert "REGRESSION" in text and "a.x" in text
    verbose = format_comparison(compare_reports(run, base), verbose=True)
    assert "a.y" in verbose


# ------------------------------------------------------------- CLI main

def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def test_main_exit_codes(tmp_path, capsys):
    base = baseline_doc()
    good = copy.deepcopy(base)
    bad = copy.deepcopy(base)
    bad["benchmarks"][1]["median_ns"] = 1000.0

    base_p = _write(tmp_path, "base.json", base)
    assert compare_main([_write(tmp_path, "good.json", good), base_p]) == 0
    assert "PERF GATE: ok" in capsys.readouterr().out
    assert compare_main([_write(tmp_path, "bad.json", bad), base_p]) == 1
    assert "PERF GATE: FAIL" in capsys.readouterr().err


def test_main_rejects_invalid_or_missing_files(tmp_path, capsys):
    base_p = _write(tmp_path, "base.json", baseline_doc())
    assert compare_main([str(tmp_path / "absent.json"), base_p]) == 2
    broken = tmp_path / "broken.json"
    broken.write_text(json.dumps({"schema_version": 1}))
    assert compare_main([str(broken), base_p]) == 2


def test_entry_tolerance_dominates_default_flag(tmp_path):
    base = calibrated_doc([make_entry("a.x", 500.0, tolerance=0.25)])
    run = copy.deepcopy(base)
    run["benchmarks"][1]["median_ns"] = 700.0  # +40%
    base_p = _write(tmp_path, "b.json", base)
    run_p = _write(tmp_path, "r.json", run)
    # The entry's own 25% band applies even when the CLI default is wide.
    assert compare_main([run_p, base_p, "--tolerance", "0.9"]) == 1
