"""Shared builders for synthetic benchmark reports."""

from typing import Any, Dict, List, Optional

import pytest

from repro.perf import make_report


def make_entry(name: str, median_ns: float, *, mad_ns: float = 1.0,
               tolerance: float = 0.25, group: Optional[str] = None,
               quick: bool = True) -> Dict[str, Any]:
    return {
        "name": name,
        "group": group if group is not None else name.rsplit(".", 1)[0],
        "module": "synthetic",
        "quick": quick,
        "tolerance": tolerance,
        "repeats": 5,
        "warmup": 1,
        "inner_loops": 8,
        "median_ns": median_ns,
        "mad_ns": mad_ns,
        "mean_ns": median_ns,
        "min_ns": median_ns - mad_ns,
        "max_ns": median_ns + mad_ns,
        "samples_ns": [median_ns] * 5,
        "notes": {},
    }


def make_doc(entries: List[Dict[str, Any]], *,
             quick: bool = True) -> Dict[str, Any]:
    return make_report(
        environment={"python": "3.11", "platform": "test", "cpu_count": 1},
        quick=quick,
        filter_pattern=None,
        benchmarks=entries,
        narratives={},
    )


@pytest.fixture
def entry_factory():
    return make_entry


@pytest.fixture
def doc_factory():
    return make_doc
