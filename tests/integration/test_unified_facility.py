"""The paper's central claim, end to end: ONE trace feeds EVERY tool.

"With the unified K42 tracing infrastructure, the programmer logs all
important events to a single trace buffer, and separately, analysis
tools using the data can decide which events to display for a given
purpose."  (§2)

One SDET-flavoured run with everything enabled produces one trace; this
module runs the complete tool suite over that single decode — listing,
timeline, profile, locks, holds, breakdown, scheduler stats, memory
profile, I/O stats, path stats, anomaly check, comparison, export,
serialization round trip, crash dump — asserting each gets what it
needs from the same stream.
"""

import io

import pytest

from repro.core.crashdump import dump_bytes, read_dump
from repro.core.majors import Major
from repro.core.stream import TraceReader
from repro.core.writer import load_records, save_records
from repro.ksim.ipc import FS_FUNCTION_NAMES
from repro.tools import (
    Timeline,
    compare_traces,
    event_histogram,
    find_deadlocks,
    format_listing,
    hold_times,
    io_statistics,
    lock_statistics,
    memory_profile,
    pc_profile,
    process_breakdown,
    sched_statistics,
    verify_trace,
)


@pytest.fixture(scope="module")
def everything_run():
    """One run with every data source enabled."""
    from repro.core.facility import TraceFacility
    from repro.ksim.kernel import Kernel, KernelConfig
    from repro.workloads.sdet import COMMANDS, sdet_script
    import random

    cfg = KernelConfig(
        ncpus=4, seed=11, pc_sample_period=5_000,
        hw_overflow_threshold=3_000, trace_all_lock_events=True,
    )
    kernel = Kernel(cfg)
    facility = TraceFacility(ncpus=4, clock=kernel.clock,
                             buffer_words=4096, num_buffers=16)
    facility.enable_all()
    kernel.facility = facility
    rng = random.Random(11)
    names = list(COMMANDS)
    for s in range(8):
        cmds = [rng.choice(names) for _ in range(4)]
        kernel.spawn_process(sdet_script(s, cmds), f"sdet_script{s}",
                             cpu=s % 4)
    assert kernel.run_until_quiescent(10**13)
    records = facility.flush()
    trace = TraceReader(registry=facility.registry).decode_records(records)
    return kernel, facility, records, trace


def test_trace_is_clean(everything_run):
    kernel, facility, records, trace = everything_run
    report = verify_trace(trace)
    assert report.ok, report.describe()
    assert report.total_events > 3_000


def test_every_major_subsystem_present(everything_run):
    kernel, facility, records, trace = everything_run
    majors = {e.major for e in trace.all_events()}
    for major in (Major.MEM, Major.PROC, Major.EXC, Major.IO, Major.LOCK,
                  Major.USER, Major.SYSCALL, Major.HWPERF, Major.PCSAMPLE):
        assert major in majors, Major(major).name


def test_listing(everything_run):
    kernel, facility, records, trace = everything_run
    text = format_listing(trace, limit=100)
    assert len(text.splitlines()) == 100


def test_timeline(everything_run):
    kernel, facility, records, trace = everything_run
    tl = Timeline(trace).mark("TRC_USER_RETURNED_MAIN").show_processes()
    out = tl.render(width=80)
    assert "cpu3" in out


def test_pc_profile(everything_run):
    kernel, facility, records, trace = everything_run
    hist = pc_profile(trace, kernel.symbols().pc_names)
    assert hist and sum(c for c, _ in hist) > 50


def test_lock_analysis(everything_run):
    kernel, facility, records, trace = everything_run
    stats = lock_statistics(trace, group_by_pid=False)
    derived = {}
    for s in stats:
        derived[s.lock_id] = derived.get(s.lock_id, 0) + s.count
    for lock in kernel.locks:
        assert derived.get(lock.lock_id, 0) == lock.contentions


def test_hold_times(everything_run):
    kernel, facility, records, trace = everything_run
    report = hold_times(trace)
    assert report.holds


def test_breakdown(everything_run):
    kernel, facility, records, trace = everything_run
    sym = kernel.symbols()
    bds = process_breakdown(trace, sym.syscall_names, sym.process_names,
                            FS_FUNCTION_NAMES)
    scripts = [b for pid, b in bds.items()
               if kernel.processes[pid].name.startswith("sdet_script")]
    assert scripts
    assert all("SCfork" in b.syscalls for b in scripts)


def test_sched_stats(everything_run):
    kernel, facility, records, trace = everything_run
    report = sched_statistics(trace)
    derived = sum(s.context_switches for s in report.per_cpu.values())
    truth = sum(c.context_switches for c in kernel.cpus)
    assert derived == truth


def test_memory_profile(everything_run):
    kernel, facility, records, trace = everything_run
    report = memory_profile(trace, kernel.symbols().process_names)
    assert report.total_l2 > 0


def test_io_stats(everything_run):
    kernel, facility, records, trace = everything_run
    report = io_statistics(trace)
    assert report.ops
    assert report.unmatched == 0


def test_path_stats(everything_run):
    kernel, facility, records, trace = everything_run
    hist = event_histogram(trace)
    names = [n for _, n in hist]
    assert "TRC_SYSCALL_ENTER" in names


def test_no_deadlock_reported(everything_run):
    kernel, facility, records, trace = everything_run
    assert not find_deadlocks(trace).deadlocked


def test_self_comparison_neutral(everything_run):
    kernel, facility, records, trace = everything_run
    comparison = compare_traces(trace, trace)
    assert comparison.speedup == pytest.approx(1.0)


def test_serialization_roundtrip(everything_run):
    kernel, facility, records, trace = everything_run
    buf = io.BytesIO()
    save_records(buf, records)
    buf.seek(0)
    again = TraceReader(registry=facility.registry).decode_records(
        load_records(buf)
    )
    assert len(again.all_events()) == len(trace.all_events())


def test_crash_dump_of_the_same_controls(everything_run):
    kernel, facility, records, trace = everything_run
    dump = read_dump(dump_bytes(facility.controls))
    assert dump.intact


def test_ltt_export_of_the_same_trace(everything_run):
    kernel, facility, records, trace = everything_run
    from repro.ltt.export import export_ltt_bytes, read_ltt

    cpu, events = read_ltt(export_ltt_bytes(trace, cpu=0))
    assert events
