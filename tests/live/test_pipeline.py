"""The live pipeline end to end: bit-identity, windowing, both sources.

The acceptance contract: a trace followed live — from a file or a
shared-memory region, chunked however the source chunks it — decodes
bit-identically to the one-shot post-mortem columnar path, so every
tool renders byte-identical output from a replay at instant speed; and
with a window bound the monitor's residency is O(window), not O(trace),
with the evictions accounted.
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.core.columnar import decode_records_columnar
from repro.core.registry import default_registry
from repro.core.writer import save_records
from repro.live.monitor import LiveMonitor
from repro.live.source import Replayer, ShmFollower
from repro.tools import kmon, lockstats, pcprofile, schedstats
from repro.workloads import run_contention

TOOL_RENDERERS = {
    "kmon": lambda t: kmon.live_render(t),
    "locks": lambda t: lockstats.live_render(t),
    "profile": lambda t: pcprofile.live_render(t),
    "sched": lambda t: schedstats.live_render(t),
}


@pytest.fixture(scope="module")
def contention_records():
    _kernel, facility, _result = run_contention(
        ncpus=4, workers_per_cpu=2, iterations=30, seed=5)
    return facility.flush()


def assert_batches_identical(a, b):
    """Column-for-column equality of two merged batches."""
    assert len(a) == len(b)
    for col in ("cpu", "seq", "offset", "ts32", "major", "minor",
                "length", "dlen", "timed"):
        assert np.array_equal(getattr(a, col), getattr(b, col)), col
    assert a.time.tolist() == b.time.tolist()
    # Payloads: gather the first two data words of every row.
    for k in (0, 1):
        va = np.where(a.dlen > k, a.data_column(k), np.uint64(0))
        vb = np.where(b.dlen > k, b.data_column(k), np.uint64(0))
        assert np.array_equal(va, vb), f"payload word {k}"


class TestReplayEquality:
    @pytest.mark.parametrize("chunk", [1, 7, None])
    def test_chunked_replay_matches_postmortem_columns(
            self, contention_records, chunk):
        reg = default_registry()
        post = decode_records_columnar(contention_records, registry=reg)
        mon = LiveMonitor(registry=reg)
        mon.drain(Replayer(contention_records, speed=0.0,
                           max_per_poll=chunk),
                  idle_timeout_s=0)
        live = mon.trace()
        assert live.cpus == post.cpus
        assert_batches_identical(post.batch(), live.batch())
        assert sorted((a.cpu, a.seq, a.offset, a.kind)
                      for a in post.anomalies) == \
            sorted((a.cpu, a.seq, a.offset, a.kind)
                   for a in live.anomalies)

    @pytest.mark.parametrize("tool", sorted(TOOL_RENDERERS))
    def test_every_tool_renders_identically(self, contention_records, tool):
        """The replay-determinism acceptance: each live tool's render
        of a followed trace is byte-identical to its post-mortem
        render — twice over, to prove the replay is deterministic."""
        reg = default_registry()
        post = decode_records_columnar(contention_records, registry=reg)
        renders = []
        for _ in range(2):
            mon = LiveMonitor(registry=reg)
            mon.drain(Replayer(contention_records, speed=0.0, max_per_poll=5),
                      idle_timeout_s=0)
            renders.append(TOOL_RENDERERS[tool](mon.trace()))
        assert renders[0] == renders[1]                 # deterministic
        assert renders[0] == TOOL_RENDERERS[tool](post)  # and post-mortem


class TestBoundedWindow:
    def test_memory_stays_o_window_on_a_long_trace(self, contention_records):
        """Follow a trace ~10x the window: residency must track the
        window, the excess must be accounted as evicted."""
        reg = default_registry()
        ref = decode_records_columnar(contention_records, registry=reg)
        total = len(ref.batch())
        bound = max(total // 10, 1)
        mon = LiveMonitor(registry=reg, window_events=bound)
        mon.drain(Replayer(contention_records, speed=0.0, max_per_poll=1),
                  idle_timeout_s=0)
        assert mon.evicted_events > 0
        # Eviction granularity is one absorbed chunk (here: one buffer),
        # so residency is bounded by window + the largest single buffer.
        largest_chunk = max(
            len(decode_records_columnar([r], registry=reg).batch())
            for r in contention_records)
        assert mon.total_events <= bound + largest_chunk
        assert mon.total_events + mon.evicted_events == total
        # The window still renders through every tool.
        for render in TOOL_RENDERERS.values():
            assert isinstance(render(mon.trace()), str)

    def test_window_holds_the_newest_arrivals(self, contention_records):
        """FIFO eviction: the survivors are exactly a suffix of the
        arrival stream (one buffer per poll), never a middle slice."""
        reg = default_registry()
        counts = [len(decode_records_columnar([r], registry=reg).batch())
                  for r in contention_records]
        mon = LiveMonitor(registry=reg, window_events=50)
        mon.drain(Replayer(contention_records, speed=0.0, max_per_poll=1),
                  idle_timeout_s=0)
        live = mon.trace().batch()
        rem = mon.total_events
        suffix = set()
        for r, n in zip(reversed(contention_records), reversed(counts)):
            if rem <= 0:
                break
            if n:
                suffix.add((r.cpu, r.seq))
            rem -= n
        assert rem == 0     # whole-chunk eviction: an exact suffix
        assert set(zip(live.cpu.tolist(), live.seq.tolist())) == suffix


class TestShmLive:
    def test_in_process_live_follow_matches_one_shot(self):
        """Interleaved logging and polling over a real shm region: the
        windowed trace equals a one-shot decode of the very records
        the follower emitted."""
        from repro.core.majors import Major
        from repro.shm.region import ShmTraceRegion

        reg = default_registry()
        # 150 events x 3 words each fits well inside 128x8 words per
        # CPU: the ring never wraps, so completeness can be asserted.
        region = ShmTraceRegion.create(ncpus=2, buffer_words=128,
                                       num_buffers=8)
        try:
            a = ShmTraceRegion.attach(region.name)
            b = ShmTraceRegion.attach(region.name)
            la, lb = a.logger(0), b.logger(1)
            src = ShmFollower(region, lag=1)
            mon = LiveMonitor(registry=reg)
            tee = []
            for i in range(150):
                la.log_words(Major.TEST, 1, [i, i * 3])
                lb.log_words(Major.TEST, 2, [i, i * 5])
                if i % 13 == 0:
                    recs = src.poll()
                    tee.extend(recs)
                    mon.feed(recs)
            region.set_done()
            while True:
                recs = src.poll()
                if not recs:
                    break
                tee.extend(recs)
                mon.feed(recs)
            recs = src.finish()
            tee.extend(recs)
            mon.feed(recs)
            a.close()
            b.close()

            post = decode_records_columnar(tee, registry=reg)
            live = mon.trace()
            assert_batches_identical(post.batch(), live.batch())
            for cpu, mult in ((0, 3), (1, 5)):
                evs = [e for e in live.events(cpu)
                       if e.major == Major.TEST]
                assert [list(e.data) for e in evs] == \
                    [[i, i * mult] for i in range(150)]
            for render in TOOL_RENDERERS.values():
                assert render(live) == render(post)
        finally:
            region.close()
            region.unlink()


# -- cross-process: real writer processes, live follower in the parent --
_wanted = os.environ.get("SHM_START_METHODS")
START_METHODS = [m for m in ("fork", "spawn")
                 if m in multiprocessing.get_all_start_methods()
                 and (not _wanted or m in _wanted.split(","))]


@pytest.mark.skipif(not START_METHODS,
                    reason="no multiprocessing start method available")
class TestShmCrossProcess:
    @pytest.mark.parametrize("method", START_METHODS)
    def test_live_follow_while_writers_race(self, method):
        from repro.core.majors import Major
        from repro.shm.procs import expected_payloads, writer_main
        from repro.shm.region import ShmTraceRegion

        writers, events, data_words = 2, 400, 2
        reg = default_registry()
        ctx = multiprocessing.get_context(method)
        region = ShmTraceRegion.create(ncpus=writers, buffer_words=256,
                                       num_buffers=8)
        try:
            procs = [
                ctx.Process(target=writer_main,
                            args=(region.name, w, events, data_words))
                for w in range(writers)
            ]
            for p in procs:
                p.start()
            src = ShmFollower(region, lag=1)
            mon = LiveMonitor(registry=reg)
            tee = []
            while any(p.is_alive() for p in procs):
                recs = src.poll()
                tee.extend(recs)
                mon.feed(recs)
                time.sleep(0.002)
            for p in procs:
                p.join()
                assert p.exitcode == 0
            region.set_done()
            recs = src.poll()
            tee.extend(recs)
            mon.feed(recs)
            recs = src.finish()
            tee.extend(recs)
            mon.feed(recs)

            # Pipeline bit-identity on whatever the follower emitted...
            post = decode_records_columnar(tee, registry=reg)
            live = mon.trace()
            assert_batches_identical(post.batch(), live.batch())
            # ...and completeness: geometry is wrap-free, so every
            # logged payload must have arrived, in order.
            issued = expected_payloads(writers, events, data_words)
            for cpu in range(writers):
                got = [list(e.data) for e in live.events(cpu)
                       if e.major == Major.TEST]
                assert got == issued[cpu]
        finally:
            region.close()
            region.unlink()


class TestFollowCli:
    @pytest.mark.parametrize("tool,cmd", [
        ("kmon", "kmon"), ("locks", "locks"),
        ("profile", "profile"), ("sched", "sched"),
    ])
    def test_replay_instant_matches_postmortem_cli(
            self, tmp_path, capsys, contention_records, tool, cmd):
        """`follow X --replay instant --tool T` prints byte-identical
        stdout to the post-mortem `T X` subcommand."""
        from repro.cli import main

        path = str(tmp_path / "run.k42")
        save_records(path, contention_records)
        assert main([cmd, path]) == 0
        post = capsys.readouterr().out
        assert main(["follow", path, "--tool", tool, "--replay", "instant",
                     "--idle-timeout", "0"]) == 0
        live = capsys.readouterr()
        assert live.out == post
        assert "live window:" in live.err

    def test_follow_growing_file_cli(self, tmp_path, capsys,
                                     contention_records):
        from repro.cli import main

        path = str(tmp_path / "done.k42")
        save_records(path, contention_records)
        assert main(["sched", path]) == 0
        post = capsys.readouterr().out
        # A complete file followed with a zero idle timeout: one pass
        # over the frames, then the idle stop — same final snapshot.
        assert main(["follow", path, "--tool", "sched",
                     "--idle-timeout", "0"]) == 0
        assert capsys.readouterr().out == post

    def test_follow_needs_a_source(self, capsys):
        from repro.cli import main

        assert main(["follow"]) == 2
        assert "needs a trace file" in capsys.readouterr().err

    def test_follow_window_bound_reports_eviction(
            self, tmp_path, capsys, contention_records):
        from repro.cli import main

        path = str(tmp_path / "win.k42")
        save_records(path, contention_records)
        assert main(["follow", path, "--tool", "locks",
                     "--replay", "instant", "--window-events", "40",
                     "--idle-timeout", "0"]) == 0
        err = capsys.readouterr().err
        assert "evicted" in err
