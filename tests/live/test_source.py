"""Live sources: the file follower's cursor and the paced replayer.

The follower contract is the file-level trust gate: a frame is yielded
only once every one of its bytes is on disk, no matter how adversarially
the writer's appends are chopped — including cuts inside a frame header.
The property test drives a real writer thread appending in randomized
chunk sizes and demands the followed stream be bit-identical to a
one-shot post-mortem read of the finished file.

Seeds come from ``LIVE_FUZZ_SEEDS`` (comma-separated, default ``0,1,2``)
so CI can sweep fresh seeds while local failures stay reproducible.
"""

import io
import os
import random
import threading
import time

import numpy as np
import pytest

from repro.core.buffers import TraceControl
from repro.core.logger import TraceLogger
from repro.core.majors import Major
from repro.core.mask import TraceMask
from repro.core.registry import default_registry
from repro.core.timestamps import ManualClock
from repro.core.writer import TraceFileReader, save_records
from repro.live.source import Replayer, TraceFileFollower, parse_speed

SEEDS = [int(s) for s in
         os.environ.get("LIVE_FUZZ_SEEDS", "0,1,2").split(",")]


def make_records(n_events=300, buffer_words=32, ncpus=1):
    control = TraceControl(buffer_words=buffer_words, num_buffers=8)
    mask = TraceMask()
    mask.enable_all()
    clock = ManualClock()
    logger = TraceLogger(control, mask, clock, registry=default_registry())
    logger.start()
    for i in range(n_events):
        clock.advance(3)
        logger.log1(Major.TEST, 1, i)
    records = control.flush()
    if ncpus > 1:   # interleave copies tagged to other CPUs, file-style
        out = []
        for r in records:
            out.append(r)
        for cpu in range(1, ncpus):
            for r in records:
                out.append(type(r)(cpu=cpu, seq=r.seq,
                                   words=np.array(r.words, dtype=np.uint64),
                                   committed=r.committed,
                                   fill_words=r.fill_words,
                                   partial=r.partial))
        return out
    return records


def trace_bytes(records):
    buf = io.BytesIO()
    save_records(buf, records)
    return buf.getvalue()


def record_key(r):
    return (r.cpu, r.seq, r.committed, r.fill_words, r.partial,
            tuple(r.words.tolist()))


class TestFileFollower:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_randomized_writer_thread_chunks_bit_identical(
            self, tmp_path, seed):
        """Property: however the writer's appends are chopped — byte by
        byte, mid-header, mid-payload — the followed records equal the
        one-shot post-mortem read of the finished file."""
        rng = random.Random(seed)
        records = make_records(n_events=400)
        data = trace_bytes(records)
        path = str(tmp_path / f"grow-{seed}.k42")
        open(path, "wb").close()

        def writer():
            pos = 0
            with open(path, "ab") as fh:
                while pos < len(data):
                    # Chunks from 1 byte (cuts inside the file header,
                    # frame headers, payload words) to a few frames.
                    n = rng.randrange(1, 3 * (len(data) // len(records)))
                    fh.write(data[pos:pos + n])
                    fh.flush()
                    pos += n
                    time.sleep(0)   # force interleaving with the poller

        t = threading.Thread(target=writer)
        follower = TraceFileFollower(path)
        got = []
        t.start()
        while t.is_alive():
            got.extend(follower.poll())
        t.join()
        got.extend(follower.finish())
        follower.close()

        assert follower.tail_state == "complete"
        assert follower.issues == []
        with open(path, "rb") as fh:
            expect = TraceFileReader(fh).read_all()
        assert len(got) == len(expect)
        assert [record_key(a) for a in got] == \
            [record_key(b) for b in expect]

    def test_poll_before_file_header_exists(self, tmp_path):
        path = str(tmp_path / "late.k42")
        open(path, "wb").close()
        follower = TraceFileFollower(path)
        assert follower.poll() == []        # not even a header yet
        with open(path, "ab") as fh:
            fh.write(b"K42")                # half a header
        assert follower.poll() == []
        records = make_records(n_events=50)
        with open(path, "ab") as fh:
            fh.write(trace_bytes(records)[3:])
        got = follower.poll() + follower.finish()
        assert len(got) == len(records)
        follower.close()

    def test_partial_tail_is_waited_out_not_parsed(self, tmp_path):
        """The trailing partial frame is never yielded early; once its
        remaining bytes land it comes out whole."""
        records = make_records(n_events=100)
        data = trace_bytes(records)
        path = str(tmp_path / "tail.k42")
        cut = len(data) - 11                # mid-payload of the last frame
        with open(path, "wb") as fh:
            fh.write(data[:cut])
        follower = TraceFileFollower(path)
        first = follower.poll()
        assert len(first) == len(records) - 1
        assert follower.poll() == []        # still waiting on the tail
        with open(path, "ab") as fh:
            fh.write(data[cut:])
        rest = follower.poll()
        assert len(rest) == 1
        assert record_key(rest[0]) == record_key(records[-1])
        follower.close()

    def test_damage_resync_mid_stream(self, tmp_path):
        """A stomped frame magic loses that frame, not the ones after
        it — and the skip is described on issues."""
        records = make_records(n_events=300)
        data = bytearray(trace_bytes(records))
        reader = TraceFileReader(io.BytesIO(bytes(data)))
        frame_size = reader.frame_size
        victim = len(records) // 2
        off = 16 + victim * frame_size
        data[off:off + 4] = b"\x00\x00\x00\x00"
        path = str(tmp_path / "damaged.k42")
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        follower = TraceFileFollower(path)
        got = follower.poll() + follower.finish()
        assert len(got) == len(records) - 1
        assert [r.seq for r in got] == [
            r.seq for i, r in enumerate(records) if i != victim]
        assert any("damaged frame" in s for s in follower.issues)
        follower.close()

    def test_finish_flags_garbage_tail_as_truncated(self, tmp_path):
        records = make_records(n_events=50)
        path = str(tmp_path / "junk.k42")
        with open(path, "wb") as fh:
            fh.write(trace_bytes(records) + b"\xde\xad\xbe\xef\xff")
        follower = TraceFileFollower(path)
        got = follower.poll() + follower.finish()
        assert len(got) == len(records)
        assert follower.tail_state == "truncated"
        assert any("truncated trailing frame" in s for s in follower.issues)
        follower.close()

    def test_finish_keeps_growing_verdict_for_valid_prefix(self, tmp_path):
        """Even at finish, a well-formed frame prefix is reported as
        the growing verdict (the writer may simply have been killed
        mid-append) and stays off issues."""
        records = make_records(n_events=50)
        data = trace_bytes(records)
        path = str(tmp_path / "midwrite.k42")
        with open(path, "wb") as fh:
            fh.write(data[:-9])
        follower = TraceFileFollower(path)
        got = follower.poll() + follower.finish()
        assert len(got) == len(records) - 1
        assert follower.tail_state == "growing"
        assert follower.issues == []
        follower.close()


class TestParseSpeed:
    def test_names_and_factors(self):
        assert parse_speed("instant") == 0.0
        assert parse_speed("realtime") == 1.0
        assert parse_speed("2x") == 2.0
        assert parse_speed("0.5x") == 0.5
        assert parse_speed("10") == 10.0

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            parse_speed("warp")
        with pytest.raises(ValueError):
            parse_speed("-1x")
        with pytest.raises(ValueError):
            parse_speed("0x")


class TestReplayer:
    def test_instant_releases_everything(self):
        records = make_records(n_events=200)
        rep = Replayer(records, speed=0.0)
        got = rep.poll()
        assert rep.done
        assert [record_key(r) for r in got] == \
            [record_key(r) for r in records]

    def test_chunked_instant_preserves_order(self):
        records = make_records(n_events=200)
        rep = Replayer(records, speed=0.0, max_per_poll=3)
        got = []
        while not rep.done:
            chunk = rep.poll()
            assert 0 < len(chunk) <= 3
            got.extend(chunk)
        assert [record_key(r) for r in got] == \
            [record_key(r) for r in records]

    def test_paced_replay_follows_the_trace_clock(self):
        """With an injected clock, a 1x replay's wall-time spacing is
        exactly the anchored trace-time spacing (cycles at 1 GHz)."""
        records = make_records(n_events=400)
        wall = [0.0]
        releases = []

        def clock():
            return wall[0]

        def sleep(s):
            assert s >= 0
            wall[0] += s

        rep = Replayer(records, speed=1.0, clock=clock, sleep=sleep)
        while not rep.done:
            for r in rep.poll():
                releases.append((wall[0], r.seq))
        assert [s for _, s in releases] == [r.seq for r in records]
        walls = [w for w, _ in releases]
        assert walls == sorted(walls)
        assert walls[-1] > walls[0]         # pacing actually elapsed time

    def test_speed_scales_wall_time(self):
        records = make_records(n_events=300)

        def run(speed):
            wall = [0.0]
            rep = Replayer(records, speed=speed,
                           clock=lambda: wall[0],
                           sleep=lambda s: wall.__setitem__(0, wall[0] + s))
            while not rep.done:
                rep.poll()
            return wall[0]

        slow, fast = run(1.0), run(2.0)
        assert slow == pytest.approx(2 * fast)

    def test_rejects_negative_speed(self):
        with pytest.raises(ValueError):
            Replayer([], speed=-1.0)
