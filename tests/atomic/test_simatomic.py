"""Tests for the deterministic simulated atomic word."""

from repro.atomic import SimAtomicWord


def test_basic_ops():
    w = SimAtomicWord(7)
    assert w.load() == 7
    w.store(9)
    assert w.load() == 9
    assert w.fetch_and_add(1) == 9
    assert w.load() == 10


def test_cas_counts_attempts_and_failures():
    w = SimAtomicWord(0)
    assert w.compare_and_store(0, 1)
    assert not w.compare_and_store(0, 2)
    assert w.cas_attempts == 2
    assert w.cas_failures == 1


def test_interference_hook_forces_failure():
    """The hook simulates a competing writer sneaking in between the
    index load and the compare-and-store — the race of Figure 1."""
    w = SimAtomicWord(0)

    def interfere(word, expected, new):
        word.store(expected + 5)  # competitor reserved first

    w.set_hook(interfere)
    assert not w.compare_and_store(0, 3)
    assert w.load() == 5
    # Retry with fresh expected value succeeds (hook mutates again).
    assert not w.compare_and_store(5, 8)
    w.set_hook(None)
    assert w.compare_and_store(10, 13)
    assert w.load() == 13


def test_hook_not_reentrant():
    """A hook that itself CASes must not recurse into the hook."""
    w = SimAtomicWord(0)
    calls = []

    def interfere(word, expected, new):
        calls.append(1)
        assert word.compare_and_store(expected, expected + 100)

    w.set_hook(interfere)
    assert not w.compare_and_store(0, 1)
    assert len(calls) == 1
    assert w.load() == 100
