"""Unit and concurrency tests for the emulated hardware atomics."""

import threading

import pytest

from repro.atomic import AtomicArray, AtomicWord


class TestAtomicWord:
    def test_initial_value(self):
        assert AtomicWord().load() == 0
        assert AtomicWord(41).load() == 41

    def test_store_load(self):
        w = AtomicWord()
        w.store(123)
        assert w.load() == 123

    def test_wraps_to_64_bits(self):
        w = AtomicWord(1 << 64)
        assert w.load() == 0
        w.store((1 << 64) + 5)
        assert w.load() == 5

    def test_cas_success(self):
        w = AtomicWord(10)
        assert w.compare_and_store(10, 20) is True
        assert w.load() == 20

    def test_cas_failure_leaves_value(self):
        w = AtomicWord(10)
        assert w.compare_and_store(11, 20) is False
        assert w.load() == 10

    def test_cas_with_wrapping_operands(self):
        w = AtomicWord(3)
        assert w.compare_and_store((1 << 64) + 3, 7) is True
        assert w.load() == 7

    def test_fetch_and_add_returns_previous(self):
        w = AtomicWord(5)
        assert w.fetch_and_add(3) == 5
        assert w.load() == 8

    def test_fetch_and_add_wraps(self):
        w = AtomicWord((1 << 64) - 1)
        assert w.fetch_and_add(2) == (1 << 64) - 1
        assert w.load() == 1

    def test_concurrent_fetch_and_add_loses_nothing(self):
        w = AtomicWord()
        n_threads, n_iters = 8, 2000

        def work():
            for _ in range(n_iters):
                w.fetch_and_add(1)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert w.load() == n_threads * n_iters

    def test_concurrent_cas_exactly_one_winner_per_value(self):
        """Each CAS generation has exactly one winner — the property the
        lockless reservation algorithm depends on."""
        w = AtomicWord(0)
        wins = []
        lock = threading.Lock()

        def work(tid):
            my_wins = 0
            while True:
                cur = w.load()
                if cur >= 5000:
                    break
                if w.compare_and_store(cur, cur + 1):
                    my_wins += 1
            with lock:
                wins.append(my_wins)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert w.load() >= 5000
        assert sum(wins) == w.load()


class TestAtomicArray:
    def test_length_and_defaults(self):
        a = AtomicArray(4)
        assert len(a) == 4
        assert a.snapshot() == [0, 0, 0, 0]

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            AtomicArray(-1)

    def test_store_load_independent_elements(self):
        a = AtomicArray(3)
        a.store(0, 10)
        a.store(2, 30)
        assert a.snapshot() == [10, 0, 30]

    def test_cas_per_element(self):
        a = AtomicArray(2)
        assert a.compare_and_store(0, 0, 9)
        assert not a.compare_and_store(1, 9, 1)
        assert a.snapshot() == [9, 0]

    def test_fetch_and_add(self):
        a = AtomicArray(2, initial=100)
        assert a.fetch_and_add(1, 5) == 100
        assert a.load(1) == 105
        assert a.load(0) == 100

    def test_zero_length_array(self):
        a = AtomicArray(0)
        assert len(a) == 0
        assert a.snapshot() == []

    def test_concurrent_adds_per_slot(self):
        a = AtomicArray(4)

        def work(slot):
            for _ in range(3000):
                a.fetch_and_add(slot, 1)

        threads = [threading.Thread(target=work, args=(i % 4,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(a.snapshot()) == 8 * 3000
