"""Single-threaded tests of the lockless logger's algorithm."""

import pytest

from repro.core.buffers import TraceControl
from repro.core.constants import MAX_EVENT_WORDS
from repro.core.logger import EventTooLargeError, NullTraceLogger, TraceLogger
from repro.core.majors import ControlMinor, Major
from repro.core.mask import TraceMask
from repro.core.registry import default_registry
from repro.core.stream import TraceReader
from repro.core.timestamps import ManualClock


def make_logger(buffer_words=64, num_buffers=4, **kw):
    control = TraceControl(buffer_words=buffer_words, num_buffers=num_buffers, **kw)
    mask = TraceMask()
    mask.enable_all()
    clock = ManualClock()
    logger = TraceLogger(control, mask, clock, registry=default_registry())
    logger.start()
    return logger, control, clock


def decode(control, **kw):
    reader = TraceReader(registry=default_registry(), **kw)
    return reader.decode_records(control.flush())


class TestBasicLogging:
    def test_single_event(self):
        logger, control, clock = make_logger()
        clock.advance(5)
        assert logger.log1(Major.TEST, 1, 0xABC)
        trace = decode(control)
        evs = [e for e in trace.events(0) if e.major == Major.TEST]
        assert len(evs) == 1
        assert evs[0].data == [0xABC]
        assert evs[0].name == "TRC_TEST_EVENT1"

    def test_mask_disabled_logs_nothing(self):
        logger, control, clock = make_logger()
        logger.mask.disable_all()
        assert logger.log1(Major.TEST, 1, 1) is False
        trace = decode(control)
        assert [e for e in trace.events(0) if e.major == Major.TEST] == []

    def test_mask_is_per_major(self):
        logger, control, _ = make_logger()
        logger.mask.set_exactly([Major.CONTROL, Major.MEM])
        assert logger.log1(Major.MEM, 5, 1)
        assert not logger.log1(Major.TEST, 1, 1)

    def test_event_variants_log0_through_log3(self):
        logger, control, _ = make_logger()
        logger.log0(Major.TEST, 0)
        logger.log1(Major.TEST, 1, 1)
        logger.log2(Major.TEST, 2, 1, 2)
        logger.log3(Major.PROC, 2, 1, 2, 3)
        trace = decode(control)
        lens = [len(e.data) for e in trace.events(0)
                if e.major in (Major.TEST, Major.PROC)]
        assert lens == [0, 1, 2, 3]

    def test_log_event_by_name_packs_layout(self):
        logger, control, _ = make_logger()
        logger.log_event("TRC_USER_RUN_UL_LOADER", 6, 7, "/shellServer")
        trace = decode(control)
        ev = trace.filter(name="TRC_USER_RUN_UL_LOADER")[0]
        assert ev.values() == [6, 7, "/shellServer"]
        assert ev.render() == (
            "process 6 created new process with id 7 name /shellServer"
        )

    def test_log_event_unknown_name(self):
        logger, _, _ = make_logger()
        with pytest.raises(KeyError):
            logger.log_event("TRC_DOES_NOT_EXIST", 1)

    def test_too_large_event_rejected(self):
        logger, _, _ = make_logger(buffer_words=64)
        with pytest.raises(EventTooLargeError):
            logger.log_words(Major.TEST, 1, [0] * 64)  # 65 words > buffer

    def test_max_field_event_rejected(self):
        logger, _, _ = make_logger(buffer_words=4096)
        with pytest.raises(EventTooLargeError):
            logger.log_words(Major.TEST, 1, [0] * MAX_EVENT_WORDS)


class TestTimestamps:
    def test_timestamps_monotonic_per_cpu(self):
        logger, control, clock = make_logger()
        for i in range(300):
            clock.advance(3)
            logger.log1(Major.TEST, 1, i)
        trace = decode(control)
        times = [e.time for e in trace.events(0)]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_full_time_reconstruction_exact_with_manual_clock(self):
        logger, control, clock = make_logger()
        clock.advance(1000)
        logger.log1(Major.TEST, 1, 0)
        trace = decode(control)
        ev = [e for e in trace.events(0) if e.major == Major.TEST][0]
        assert ev.time == 1000

    def test_reconstruction_across_32bit_wrap(self):
        """Full 64-bit times survive the 32-bit header truncation."""
        logger, control, clock = make_logger(buffer_words=32)
        half = (1 << 31) - 100  # each inter-event gap stays below 2**31
        clock.advance(half)
        logger.log1(Major.TEST, 1, 0)
        clock.advance(half)
        logger.log1(Major.TEST, 1, 1)
        clock.advance(300)  # total now crosses the 2**32 boundary
        logger.log1(Major.TEST, 1, 2)
        trace = decode(control)
        evs = [e for e in trace.events(0) if e.major == Major.TEST]
        assert [e.time for e in evs] == [half, 2 * half, 2 * half + 300]
        assert 2 * half + 300 > (1 << 32)


class TestBufferBoundaries:
    def test_filler_inserted_when_event_does_not_fit(self):
        logger, control, _ = make_logger(buffer_words=32)
        # Anchors take 4 words; log 9 x 3-word events = 27 -> 31 used;
        # next 3-word event cannot fit in the 1 remaining word.
        for i in range(9):
            logger.log2(Major.TEST, 2, i, i)
        logger.log2(Major.TEST, 2, 99, 99)
        assert control.stats_fillers >= 1
        trace = decode(control)
        evs = [e for e in trace.events(0) if e.major == Major.TEST]
        assert len(evs) == 10
        assert not trace.anomalies

    def test_no_event_crosses_boundary_invariant(self):
        logger, control, _ = make_logger(buffer_words=32, num_buffers=4)
        import random
        rng = random.Random(42)
        for i in range(500):
            n = rng.randint(0, 6)
            logger.log_words(Major.TEST, 1, list(range(n)))
        records = control.flush()
        reader = TraceReader(registry=default_registry(), include_fillers=True)
        trace = reader.decode_records(records)
        for ev in trace.events(0):
            start = ev.offset
            span = len(ev.data) + 1 if not ev.is_filler else None
            if span is not None:
                assert start + span <= 32, f"event crosses boundary: {ev}"

    def test_buffers_complete_in_sequence(self):
        logger, control, _ = make_logger(buffer_words=32, num_buffers=4)
        for i in range(200):
            logger.log1(Major.TEST, 1, i)
        records = control.drain()
        seqs = [r.seq for r in records]
        assert seqs == sorted(seqs)
        assert seqs == list(range(len(seqs)))

    def test_every_completed_buffer_committed_fully(self):
        logger, control, _ = make_logger(buffer_words=32, num_buffers=4)
        for i in range(500):
            logger.log1(Major.TEST, 1, i)
        for rec in control.drain():
            assert rec.committed == rec.fill_words == 32

    def test_anchor_present_in_every_buffer(self):
        logger, control, _ = make_logger(buffer_words=32, num_buffers=4)
        for i in range(300):
            logger.log1(Major.TEST, 1, i)
        records = control.flush()
        reader = TraceReader(registry=default_registry())
        for rec in records:
            evs = reader.decode_buffer(rec, [])
            anchors = [
                e for e in evs
                if e.major == Major.CONTROL and e.minor == ControlMinor.TIMESTAMP_ANCHOR
            ]
            assert anchors, f"buffer seq {rec.seq} lacks an anchor"

    def test_commit_counts_can_be_disabled(self):
        control = TraceControl(buffer_words=32, num_buffers=4)
        mask = TraceMask()
        mask.enable_all()
        logger = TraceLogger(control, mask, ManualClock(), commit_counts=False)
        logger.start()
        for i in range(100):
            logger.log1(Major.TEST, 1, i)
        for rec in control.drain():
            assert rec.committed == 0
        reader = TraceReader(check_committed=False)
        trace = reader.decode_records(control.flush())
        assert not trace.anomalies


class TestFlightRecorder:
    def test_ring_overwrites_and_snapshot_returns_recent(self):
        logger, control, clock = make_logger(
            buffer_words=32, num_buffers=4, mode="flight"
        )
        for i in range(1000):
            clock.advance(1)
            logger.log1(Major.TEST, 1, i)
        records = control.snapshot()
        assert 1 <= len(records) <= 4
        # Newest data present: the last logged value must be visible.
        reader = TraceReader(registry=default_registry())
        trace = reader.decode_records(records)
        values = [e.data[0] for e in trace.events(0) if e.major == Major.TEST]
        assert values[-1] == 999
        # Values are a contiguous recent suffix.
        assert values == list(range(values[0], 1000))

    def test_flight_mode_queues_nothing(self):
        logger, control, _ = make_logger(buffer_words=32, num_buffers=4, mode="flight")
        for i in range(500):
            logger.log1(Major.TEST, 1, i)
        assert control.drain() == []


class TestWriteoutPressure:
    def test_max_pending_drops_oldest(self):
        logger, control, _ = make_logger(
            buffer_words=32, num_buffers=4, max_pending=2
        )
        for i in range(2000):
            logger.log1(Major.TEST, 1, i)
        assert control.stats_dropped_buffers > 0
        assert len(control.completed) <= 2


class TestNullLogger:
    def test_null_logger_does_nothing(self):
        n = NullTraceLogger()
        assert n.log0(1, 1) is False
        assert n.log3(1, 1, 1, 2, 3) is False
        assert n.log_words(1, 1, [1, 2]) is False
        assert n.log_event("anything") is False
        n.start()


class TestStragglerGarble:
    """§3.1's hard failure mode, constructed deliberately: a writer is
    interrupted between reserve and log for so long that the ring wraps
    and its reservation's position is recycled by a newer buffer.  The
    write lands in the recycled buffer; the per-buffer committed count
    ("too much data") and/or the reader's validity checks must flag it.
    """

    def test_straggler_write_into_recycled_buffer_detected(self):
        from repro.core.constants import TIMESTAMP_MASK
        from repro.core.header import pack_header

        logger, control, clock = make_logger(buffer_words=32, num_buffers=4)
        clock.advance(100)
        # The straggler reserves... and is "preempted" before writing.
        idx, ts = logger._reserve(2)
        # Meanwhile the system logs enough to lap the whole ring.
        for i in range(300):
            clock.advance(10)
            logger.log1(Major.TEST, 1, i)
        # The straggler finally wakes and writes with its stale timestamp.
        pos = idx & control.index_mask
        control.array[pos] = pack_header(ts & TIMESTAMP_MASK, 2,
                                         Major.TEST, 1)
        control.array[pos + 1] = 0xDEAD
        control.committed.fetch_and_add(
            control.slot_of(control.buffer_of(idx)), 2
        )
        trace = decode(control)
        assert trace.anomalies, (
            "a straggler lap-behind write must be detectable"
        )
        kinds = {a.kind for a in trace.anomalies}
        assert kinds & {"committed-mismatch", "garbled"}

    def test_hole_from_unfinished_reservation_detected(self):
        """A reservation never written at all leaves a zeroed hole (the
        buffer was zeroed ahead); readers flag it and recover at the
        boundary, and the committed count comes up short."""
        logger, control, clock = make_logger(buffer_words=32, num_buffers=4)
        logger._reserve(3)  # reserved, never written, never committed
        for i in range(40):
            clock.advance(5)
            logger.log1(Major.TEST, 1, i)
        trace = decode(control)
        kinds = {a.kind for a in trace.anomalies}
        assert "garbled" in kinds or "committed-mismatch" in kinds
        # Recovery: events after the hole's buffer still decode.
        later = [e for e in trace.events(0) if e.major == Major.TEST]
        assert later


class TestStats:
    def test_stats_track_events_and_words(self):
        logger, control, _ = make_logger()
        before = control.stats_events_logged
        logger.log2(Major.TEST, 2, 1, 2)
        assert control.stats_events_logged == before + 1
        assert control.stats_words_logged >= 3
