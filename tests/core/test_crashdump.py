"""Crash-dump tool tests (§4.2's future-work item, implemented)."""

import io

import numpy as np
import pytest

from repro.core.crashdump import dump_bytes, read_dump, write_dump
from repro.core.facility import TraceFacility
from repro.core.majors import Major
from repro.core.registry import default_registry
from repro.core.stream import TraceReader
from repro.core.timestamps import ManualClock


def crashed_facility(n_events=700):
    """A facility mid-run, as a crash would find it."""
    fac = TraceFacility(ncpus=2, buffer_words=64, num_buffers=4,
                        mode="flight", clock=ManualClock())
    fac.enable_all()
    for i in range(n_events):
        fac.clock.advance(3)
        fac.log(i % 2, Major.TEST, 1, (i,))
    return fac


def test_dump_and_recover_recent_events():
    fac = crashed_facility()
    image = dump_bytes(fac.controls)
    dump = read_dump(image)
    assert dump.intact
    assert dump.ncpus == 2
    trace = TraceReader(registry=default_registry()).decode_records(
        dump.records
    )
    for cpu in (0, 1):
        values = [e.data[0] for e in trace.events(cpu)
                  if e.major == Major.TEST]
        assert values, f"cpu {cpu} lost its history"
        # The newest event logged to this CPU must be present.
        newest = max(i for i in range(700) if i % 2 == cpu)
        assert values[-1] == newest
        # And the recovered history is a contiguous suffix.
        assert values == list(range(values[0], 700, 2))


def test_dump_matches_live_snapshot():
    """The dump tool reconstructs exactly what the live debugger hook
    (snapshot) would have printed."""
    fac = crashed_facility()
    live = fac.snapshot()
    dumped = read_dump(dump_bytes(fac.controls)).records
    assert len(live) == len(dumped)
    live.sort(key=lambda r: (r.cpu, r.seq))
    for a, b in zip(live, dumped):
        assert (a.cpu, a.seq, a.committed, a.fill_words, a.partial) == \
            (b.cpu, b.seq, b.committed, b.fill_words, b.partial)
        assert np.array_equal(a.words, b.words)


def test_not_a_dump_rejected():
    with pytest.raises(ValueError):
        read_dump(b"definitely not a dump image, far too short? no.")
    with pytest.raises(ValueError):
        read_dump(b"X" * 100)


def test_truncated_header_rejected():
    with pytest.raises(ValueError):
        read_dump(b"K42CRASH")


def test_corrupted_section_reported_not_fatal():
    fac = crashed_facility(200)
    image = bytearray(dump_bytes(fac.controls))
    # Stomp the second CPU's section magic (find it after cpu0's data).
    ctl = fac.controls[0]
    sec0_size = 32 + ctl.num_buffers * 16 + ctl.total_words * 8
    offset = 16 + sec0_size
    image[offset:offset + 4] = b"\x00\x00\x00\x00"
    dump = read_dump(bytes(image))
    assert not dump.intact
    assert any("magic" in i.detail for i in dump.issues)
    # CPU 0 still recovered.
    assert any(r.cpu == 0 for r in dump.records)


def test_damaged_section_resync_recovers_later_cpus():
    """Damage in an early section must not take later CPUs with it: the
    reader scans forward for the next section magic and resumes."""
    fac = TraceFacility(ncpus=3, buffer_words=64, num_buffers=4,
                        mode="flight", clock=ManualClock())
    fac.enable_all()
    for i in range(300):
        fac.clock.advance(3)
        fac.log(i % 3, Major.TEST, 1, (i,))
    image = bytearray(dump_bytes(fac.controls))
    image[16:20] = b"\x00\x00\x00\x00"  # stomp cpu0's section magic
    dump = read_dump(bytes(image))
    assert not dump.intact
    assert any("resynchronized" in i.detail for i in dump.issues)
    recovered_cpus = {r.cpu for r in dump.records}
    assert 0 not in recovered_cpus
    assert {1, 2} <= recovered_cpus


def test_truncated_memory_reported():
    fac = crashed_facility(200)
    image = dump_bytes(fac.controls)
    dump = read_dump(image[: len(image) // 2])
    assert not dump.intact


def test_implausible_geometry_rejected_per_section():
    fac = crashed_facility(100)
    image = bytearray(dump_bytes(fac.controls))
    # buffer_words field of cpu0 section at offset 16+8.
    image[24:28] = (2**31).to_bytes(4, "little")
    dump = read_dump(bytes(image))
    assert not dump.intact
    assert any("implausible" in i.detail for i in dump.issues)


def test_writeout_mode_controls_also_dumpable():
    fac = TraceFacility(ncpus=1, buffer_words=64, num_buffers=4,
                        clock=ManualClock())
    fac.enable_all()
    for i in range(50):
        fac.clock.advance(2)
        fac.log(0, Major.TEST, 1, (i,))
    dump = read_dump(dump_bytes(fac.controls))
    assert dump.intact
    trace = TraceReader(registry=default_registry()).decode_records(
        dump.records
    )
    assert [e.data[0] for e in trace.events(0) if e.major == Major.TEST] \
        == list(range(50))


def test_file_roundtrip(tmp_path):
    fac = crashed_facility(300)
    path = tmp_path / "core.k42crash"
    with open(path, "wb") as fh:
        write_dump(fac.controls, fh)
    with open(path, "rb") as fh:
        dump = read_dump(fh)
    assert dump.intact and dump.records
