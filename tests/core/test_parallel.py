"""Parallel/batched decode equivalence: every path must be bit-identical.

The contract under test: ``TraceReader(batch=True)`` (vectorized scan),
``decode_records_parallel`` (boundary-sharded worker pool), the
columnar readers (``ColumnarTraceReader`` and
``decode_records_columnar_parallel``), and the scalar reference reader
produce event-for-event, anomaly-for-anomaly identical traces — on
clean streams, on every garble class the format can exhibit, with and
without fillers, and across shard cuts that separate a buffer from its
timestamp anchor state.
"""

import random

import numpy as np

from repro.core.buffers import TraceControl
from repro.core.facility import TraceFacility
from repro.core.header import pack_header
from repro.core.logger import TraceLogger
from repro.core.majors import ControlMinor, Major
from repro.core.mask import TraceMask
from repro.core.columnar import ColumnarTraceReader
from repro.core.parallel import (
    ParallelTraceReader,
    decode_records_columnar_parallel,
    decode_records_parallel,
    shard_records,
)
from repro.core.registry import default_registry
from repro.core.stream import TraceReader, scan_buffer, unwrap_times
from repro.core.timestamps import ManualClock


def build_records(n_events=600, ncpus=3, buffer_words=64, tick=7,
                  start=1000):
    clock = ManualClock(start=start)
    fac = TraceFacility(ncpus=ncpus, buffer_words=buffer_words,
                        num_buffers=4, clock=clock)
    fac.enable_all()
    records = []
    for i in range(n_events):
        fac.log(i % ncpus, 2 + (i % 6), i % 16, [i, i * 7][: i % 3])
        clock.advance(tick)
        if i % 150 == 149:
            records.extend(fac.drain())
    records.extend(fac.flush())
    return records


def as_comparable(trace):
    events = {
        cpu: [
            (e.cpu, e.seq, e.offset, e.ts32, e.major, e.minor,
             tuple(e.data), e.time, e.spec.name if e.spec else None)
            for e in evs
        ]
        for cpu, evs in trace.events_by_cpu.items()
    }
    anomalies = [(a.cpu, a.seq, a.offset, a.kind, a.detail)
                 for a in trace.anomalies]
    return events, anomalies


def assert_all_paths_identical(records, include_fillers=False, workers=3,
                               strict=False):
    reg = default_registry()
    scalar = TraceReader(registry=reg, include_fillers=include_fillers,
                         batch=False, strict=strict).decode_records(records)
    batched = TraceReader(registry=reg, include_fillers=include_fillers,
                          batch=True, strict=strict).decode_records(records)
    par = decode_records_parallel(records, registry=reg,
                                  include_fillers=include_fillers,
                                  workers=workers, strict=strict)
    col = ColumnarTraceReader(registry=reg, include_fillers=include_fillers,
                              strict=strict).decode_records(records)
    col_par = decode_records_columnar_parallel(
        records, registry=reg, include_fillers=include_fillers,
        workers=workers, strict=strict)
    ref = as_comparable(scalar)
    assert as_comparable(batched) == ref
    assert as_comparable(par) == ref
    assert as_comparable(col) == ref
    assert as_comparable(col_par) == ref
    return scalar


class TestCleanEquivalence:
    def test_multi_cpu_trace(self):
        records = build_records()
        trace = assert_all_paths_identical(records)
        assert sum(len(v) for v in trace.events_by_cpu.values()) > 500
        assert trace.anomalies == []

    def test_with_fillers(self):
        records = build_records()
        assert_all_paths_identical(records, include_fillers=True)

    def test_near_wrap_timestamps(self):
        # 32-bit timestamp wrap mid-trace exercises the cumsum unwrap.
        records = build_records(start=(1 << 32) - 2000)
        assert_all_paths_identical(records)

    def test_single_buffer_falls_back_sequential(self):
        records = build_records(n_events=10, ncpus=1)
        assert_all_paths_identical(records, workers=4)

    def test_workers_one_is_sequential(self):
        records = build_records()
        reg = default_registry()
        seq = TraceReader(registry=reg).decode_records(records)
        one = decode_records_parallel(records, registry=reg, workers=1)
        assert as_comparable(one) == as_comparable(seq)

    def test_parallel_reader_decode_file(self, tmp_path):
        from repro.core.writer import save_records

        records = build_records()
        path = tmp_path / "t.k42"
        save_records(str(path), records)
        reg = default_registry()
        seq = TraceReader(registry=reg).decode_records(records)
        par = ParallelTraceReader(registry=reg, workers=3).decode_file(
            str(path))
        assert as_comparable(par) == as_comparable(seq)


class TestGarbledEquivalence:
    """Every garble class decodes identically on every path."""

    def _corrupt(self, mutate):
        """Mutate a mid-trace record; ``mutate`` gets the record, its
        words, and the offsets of real event headers in the buffer."""
        records = build_records()
        rec = records[len(records) // 2]
        words = np.array(rec.words, dtype=np.uint64, copy=True)
        offsets = scan_buffer(words, rec.fill_words).offsets
        assert len(offsets) > 4
        mutate(rec, words, offsets)
        rec.words = words
        return records

    def _assert_identical_with_anomaly(self, records, kind="garbled"):
        trace = assert_all_paths_identical(records)
        assert any(a.kind == kind for a in trace.anomalies)
        assert_all_paths_identical(records, include_fillers=True)
        # Strict (stop-at-first-garble) must also agree across paths.
        assert_all_paths_identical(records, strict=True)

    def test_zeroed_header(self):
        def mutate(rec, w, offs):
            w[offs[2]] = 0

        self._assert_identical_with_anomaly(self._corrupt(mutate))

    def test_overrun_length(self):
        def mutate(rec, w, offs):
            w[offs[2]] = pack_header(1 << 20, 1000, Major.TEST, 1)

        self._assert_identical_with_anomaly(self._corrupt(mutate))

    def test_timestamp_regression(self):
        def mutate(rec, w, offs):
            # A header claiming a huge backwards timestamp jump.
            w[offs[3]] = pack_header(1, 1, Major.TEST, 1)

        self._assert_identical_with_anomaly(self._corrupt(mutate))

    def test_truncated_extended_filler(self):
        def mutate(rec, w, offs):
            # An extended filler whose span word lies past the buffer.
            w[offs[-1]] = pack_header(1 << 20, 0, Major.CONTROL,
                                      ControlMinor.FILLER_EXT)
            rec.fill_words = offs[-1] + 1

        self._assert_identical_with_anomaly(self._corrupt(mutate))

    def test_bad_extended_filler_span(self):
        def mutate(rec, w, offs):
            w[offs[2]] = pack_header(1 << 20, 0, Major.CONTROL,
                                     ControlMinor.FILLER_EXT)
            w[offs[2] + 1] = 1  # span < 2 can never be a real filler

        self._assert_identical_with_anomaly(self._corrupt(mutate))

    def test_committed_mismatch(self):
        def mutate(rec, w, offs):
            rec.committed = max(0, rec.committed - 3)

        records = self._corrupt(mutate)
        self._assert_identical_with_anomaly(records, "committed-mismatch")

    def test_random_garbage_fuzz(self):
        """Deterministic adversarial sweep over corruption modes."""
        for seed in range(25):
            rng = random.Random(seed)
            records = build_records(
                n_events=rng.randint(100, 500),
                ncpus=rng.randint(1, 4),
                start=(1 << 32) - 3000 if seed % 3 == 0 else 1000,
            )
            for rec in records:
                if rng.random() < 0.5:
                    w = np.array(rec.words, dtype=np.uint64, copy=True)
                    k = rng.randrange(max(1, rec.fill_words))
                    mode = rng.randrange(4)
                    if mode == 0:
                        w[k] = 0
                    elif mode == 1:
                        w[k] = pack_header(
                            rng.getrandbits(32), rng.randint(0, 1023),
                            rng.randint(0, 63), rng.getrandbits(16))
                    elif mode == 2:
                        w[k] = rng.getrandbits(64)
                    else:
                        rec.committed = max(0, rec.committed
                                            - rng.randint(1, 10))
                    rec.words = w
            for inc in (False, True):
                assert_all_paths_identical(records, include_fillers=inc,
                                           workers=rng.randint(2, 4),
                                           strict=seed % 2 == 1)


class TestShardStitching:
    """Shard cuts that strand a buffer away from its timestamp anchor."""

    def _anchorless_chain(self):
        """Four buffers on one CPU where only some carry anchors, so
        times for the rest must be unwrapped across buffer (and shard)
        boundaries."""
        control = TraceControl(buffer_words=32, num_buffers=8)
        mask = TraceMask()
        mask.enable_all()
        clock = ManualClock(start=500)
        logger = TraceLogger(control, mask, clock,
                             registry=default_registry())
        logger.start()
        for i in range(70):
            clock.advance(11)
            logger.log_words(Major.TEST, 1, [i])
        records = control.flush()
        assert len(records) >= 4
        # Strip the anchor from every buffer except the first: overwrite
        # the anchor event's header with a plain TEST event.
        reg = default_registry()
        for rec in records[1:]:
            w = np.array(rec.words, dtype=np.uint64, copy=True)
            scan = scan_buffer(w, rec.fill_words)
            for off in scan.offsets:
                hdr_ts = scan.cols.ts32[off]
                if (scan.cols.major[off] == Major.CONTROL
                        and scan.cols.minor[off]
                        == ControlMinor.TIMESTAMP_ANCHOR):
                    w[off] = pack_header(hdr_ts, scan.cols.length[off],
                                         Major.TEST, 7)
            rec.words = w
        return records

    def test_anchorless_buffers_stitch_across_shards(self):
        records = self._anchorless_chain()
        trace = assert_all_paths_identical(records, workers=2)
        kinds = [a.kind for a in trace.anomalies]
        assert "missing-anchor" in kinds
        # Every event still got a reconstructed time.
        for evs in trace.events_by_cpu.values():
            assert all(e.time is not None for e in evs)

    def test_shards_cut_at_every_boundary(self):
        """Force one shard per buffer — the worst stitching case."""
        records = self._anchorless_chain()
        reg = default_registry()
        seq = TraceReader(registry=reg).decode_records(records)
        par = decode_records_parallel(records, registry=reg, workers=2,
                                      shards_per_worker=len(records))
        assert as_comparable(par) == as_comparable(seq)


class TestStartMethods:
    """Spawn-only platforms now decode on a persistent spawn pool; a
    disabled pool (``REPRO_POOL_START_METHOD=none``) runs the shard
    scans in-process — every mode stays bit-identical to sequential."""

    def test_forced_spawn_pool_identical(self, monkeypatch):
        from repro.core import pool

        monkeypatch.setenv("REPRO_POOL_START_METHOD", "spawn")
        pool.shutdown()
        try:
            records = build_records()
            reg = default_registry()
            seq = TraceReader(registry=reg).decode_records(records)
            par = decode_records_parallel(records, registry=reg, workers=2)
            assert pool.pool_kind() == "spawn"
            assert as_comparable(par) == as_comparable(seq)
        finally:
            pool.shutdown()

    def test_pool_disabled_runs_in_process(self, monkeypatch):
        from repro.core import pool

        monkeypatch.setenv("REPRO_POOL_START_METHOD", "none")
        pool.shutdown()
        records = build_records()
        reg = default_registry()
        seq = TraceReader(registry=reg, strict=True).decode_records(records)
        par = decode_records_parallel(records, registry=reg, workers=3,
                                      strict=True)
        assert pool.pool_kind() is None
        assert as_comparable(par) == as_comparable(seq)


class TestEmptyTrace:
    """An empty/header-only trace must decode with --workers (the old
    per-call executor raised ``ValueError: max_workers`` on 0 shards)."""

    def test_empty_records_parallel(self):
        trace = decode_records_parallel([], workers=4)
        assert trace.events_by_cpu == {}
        cols = decode_records_columnar_parallel([], workers=4)
        assert cols.cpus == []

    def test_run_tasks_empty_guard(self):
        from repro.core.parallel import _run_tasks

        assert _run_tasks([], 4) == []

    def test_header_only_file_with_workers(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.writer import save_records

        path = str(tmp_path / "empty.k42")
        save_records(path, [], buffer_words=64)
        assert main(["list", path, "--workers", "4"]) == 0
        assert main(["info", path, "--workers", "4"]) == 0
        out = capsys.readouterr().out
        assert "frames: 0" in out


class TestShardRecords:
    def test_contiguous_and_complete(self):
        records = build_records(ncpus=3)
        shards = shard_records(records, 6)
        seen = {}
        for cpu, recs in shards:
            assert all(r.cpu == cpu for r in recs)
            seqs = [r.seq for r in recs]
            assert seqs == sorted(seqs)
            seen.setdefault(cpu, []).extend(seqs)
        for cpu, seqs in seen.items():
            expected = sorted(r.seq for r in records if r.cpu == cpu)
            assert seqs == expected  # contiguous concatenation, in order

    def test_deterministic(self):
        records = build_records()
        a = shard_records(records, 5)
        b = shard_records(records, 5)
        assert [(c, [r.seq for r in rs]) for c, rs in a] == \
               [(c, [r.seq for r in rs]) for c, rs in b]

    def test_budget_respected(self):
        records = build_records(ncpus=2)
        assert len(shard_records(records, 4)) <= 4 + 2  # rounding slack
        assert len(shard_records(records, 1)) >= 2  # at least one per CPU

    def test_empty(self):
        assert shard_records([], 4) == []


class TestUnwrapTimes:
    def test_no_events(self):
        assert unwrap_times([], None, None, None, None) is None

    def test_no_basis(self):
        assert unwrap_times([5, 6], None, None, None, None) is None

    def test_anchor_based(self):
        ts = [10, 20, 15, 30]
        times = unwrap_times(ts, 1, 1_000_020, None, None)
        assert times == [1_000_010, 1_000_020, 1_000_015, 1_000_030]

    def test_state_based_wraps(self):
        wrap = 1 << 32
        ts = [wrap - 2 & 0xFFFFFFFF, 3]
        times = unwrap_times(ts, None, None, 5_000_000_000, wrap - 10)
        assert times[0] == 5_000_000_008
        assert times[1] == 5_000_000_013

    def test_single_event(self):
        assert unwrap_times([7], 0, 99, None, None) == [99]

    def test_rebases_at_each_anchor(self):
        """Two anchors bridging a gap > 2^31: the deltas between them
        are meaningless, the second anchor's full value is the truth."""
        gap = 3_000_000_000  # > 2^31, unrepresentable as a 32-bit delta
        ts = [100, 110, (100 + gap) & 0xFFFFFFFF, (100 + gap + 5) & 0xFFFFFFFF]
        anchors = [(0, 100), (2, 100 + gap)]
        times = unwrap_times(ts, None, None, None, None, anchors=anchors)
        assert times == [100, 110, 100 + gap, 100 + gap + 5]

    def test_events_before_first_anchor_chain_backward(self):
        ts = [10, 20, 30]
        times = unwrap_times(ts, None, None, None, None,
                             anchors=[(1, 1_000_020)])
        assert times == [1_000_010, 1_000_020, 1_000_030]


class TestLateAnchorGap:
    """A writer that starts logging > 2^31 ticks after the buffer's
    first anchor — the shared-memory attach scenario.  A fresh
    full-width anchor must carry the stream across the gap on every
    reader path, with exact absolute times and no garble verdicts."""

    GAP = 3_000_000_000  # ~3 s in ns: greater than 2^31

    def build(self, with_anchor):
        clock = ManualClock(start=500)
        fac = TraceFacility(ncpus=1, buffer_words=64, num_buffers=4,
                            clock=clock)
        fac.enable_all()
        fac.log(0, Major.TEST, 1, [1])
        clock.advance(self.GAP)
        if with_anchor:
            fac.logger(0).log_timestamp_anchor()
        for i in range(5):
            fac.log(0, Major.TEST, 2, [i])
            clock.advance(7)
        return fac.flush()

    def test_fresh_anchor_bridges_gap(self):
        records = self.build(with_anchor=True)
        trace = assert_all_paths_identical(records)
        assert trace.anomalies == []
        late = [e for e in trace.events(0)
                if e.major == Major.TEST and e.minor == 2]
        assert len(late) == 5
        assert late[0].time == 500 + self.GAP
        assert [e.time for e in late] == \
            [500 + self.GAP + 7 * i for i in range(5)]

    def test_without_anchor_gap_is_flagged(self):
        """Sanity check of the failure mode the anchor prevents: the
        same stream minus the anchor reads as a timestamp regression."""
        records = self.build(with_anchor=False)
        trace = assert_all_paths_identical(records)
        assert "garbled" in [a.kind for a in trace.anomalies]


class TestCliWorkers:
    def test_cli_list_workers_matches_sequential(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.writer import save_records

        records = build_records()
        path = str(tmp_path / "t.k42")
        save_records(path, records)
        assert main(["list", path, "--limit", "50"]) == 0
        seq_out = capsys.readouterr().out
        assert main(["list", path, "--limit", "50", "--workers", "3"]) == 0
        par_out = capsys.readouterr().out
        assert par_out == seq_out
        assert "TRC_" in seq_out
