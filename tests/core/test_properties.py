"""Property-based tests (hypothesis) for the core invariants.

The invariants the paper's design rests on:

1. any sequence of variable-length events logs and decodes back exactly
   (no event lost, no data corrupted, order preserved);
2. no event ever crosses an alignment boundary;
3. every alignment boundary is a valid decode entry point, and decoding
   from it yields exactly the sequential suffix;
4. per-CPU full timestamps are non-decreasing after reconstruction;
5. committed counts equal buffer fill for every completed buffer;
6. the decoder never crashes or loops on arbitrary corrupted input —
   it either decodes or reports an anomaly, always terminating;
7. serialization round-trips losslessly.
"""

import io
import os
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.buffers import BufferRecord, TraceControl
from repro.core.faults import RECORD_KINDS, FaultInjector
from repro.core.logger import TraceLogger
from repro.core.majors import Major
from repro.core.mask import TraceMask
from repro.core.registry import default_registry
from repro.core.stream import TraceReader, decode_from_offset, flat_records
from repro.core.timestamps import ManualClock
from repro.core.writer import load_records, save_records

# One logged event: (data word count, tick advance).
event_strategy = st.tuples(st.integers(0, 10), st.integers(0, 50))
sequence_strategy = st.lists(event_strategy, min_size=0, max_size=120)

SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def log_sequence(events, buffer_words=64, num_buffers=8, mode="writeout"):
    control = TraceControl(buffer_words=buffer_words,
                           num_buffers=num_buffers, mode=mode)
    mask = TraceMask()
    mask.enable_all()
    clock = ManualClock()
    logger = TraceLogger(control, mask, clock, registry=default_registry())
    logger.start()
    logged = []
    for i, (nwords, tick) in enumerate(events):
        clock.advance(tick)
        data = [(i << 8) | k for k in range(nwords)]
        logger.log_words(Major.TEST, 1, data)
        logged.append((clock.now(), data))
    return control, logged


@given(sequence_strategy)
@settings(**SETTINGS)
def test_roundtrip_exact(events):
    """Invariant 1: log -> decode is the identity on the event stream."""
    control, logged = log_sequence(events)
    trace = TraceReader(registry=default_registry()).decode_records(
        control.flush()
    )
    assert trace.anomalies == []
    got = [(e.time, e.data) for e in trace.events(0) if e.major == Major.TEST]
    assert got == logged


@given(sequence_strategy)
@settings(**SETTINGS)
def test_no_event_crosses_boundary(events):
    """Invariant 2: every event fits within one aligned buffer."""
    control, _ = log_sequence(events, buffer_words=32)
    reader = TraceReader(registry=default_registry(), include_fillers=True)
    records = control.flush()
    for rec in records:
        evs = reader.decode_buffer(rec, [])
        for e in evs:
            if e.is_filler:
                continue
            assert e.offset + len(e.data) + 1 <= 32


@given(sequence_strategy, st.integers(0, 10_000))
@settings(**SETTINGS)
def test_every_boundary_is_entry_point(events, seek):
    """Invariant 3: decode-from-boundary == sequential suffix."""
    control, _ = log_sequence(events, buffer_words=32, num_buffers=16)
    records = [r for r in control.flush() if not r.partial]
    if not records:
        return
    flat = np.concatenate([r.words for r in records])
    reader = TraceReader(registry=default_registry(), check_committed=False)
    seq_events = reader.decode_records(flat_records(flat, 32)).events(0)
    offset = seek % len(flat)
    sub = decode_from_offset(flat, 32, offset, registry=default_registry())
    start_buf = offset // 32
    expect = [(e.seq, e.offset, e.data) for e in seq_events
              if e.seq >= start_buf]
    got = [(e.seq, e.offset, e.data) for e in sub.events(0)]
    assert got == expect


@given(sequence_strategy)
@settings(**SETTINGS)
def test_timestamps_nondecreasing(events):
    """Invariant 4: reconstructed times are monotone per CPU."""
    control, _ = log_sequence(events, buffer_words=32)
    reader = TraceReader(registry=default_registry(), include_fillers=True)
    trace = reader.decode_records(control.flush())
    times = [e.time for e in trace.events(0)]
    assert all(a <= b for a, b in zip(times, times[1:]))


@given(sequence_strategy)
@settings(**SETTINGS)
def test_committed_counts_exact(events):
    """Invariant 5: completed buffers commit exactly their size."""
    control, _ = log_sequence(events, buffer_words=32)
    for rec in control.flush():
        if not rec.partial:
            assert rec.committed == rec.fill_words
        else:
            assert rec.committed == rec.fill_words  # quiesced partial too


@given(
    sequence_strategy,
    st.lists(st.tuples(st.integers(0, 511), st.integers(0, 2**64 - 1)),
             min_size=1, max_size=8),
)
@settings(**SETTINGS)
def test_decoder_total_on_corruption(events, mutations):
    """Invariant 6: arbitrary word mutations never crash or hang the
    decoder; it reports anomalies instead."""
    control, _ = log_sequence(events, buffer_words=64, num_buffers=8)
    records = control.flush()
    if not records:
        return
    for pos, value in mutations:
        rec = records[pos % len(records)]
        rec.words[pos % len(rec.words)] = np.uint64(value)
    reader = TraceReader(registry=default_registry())
    trace = reader.decode_records(records)  # must terminate, not raise
    for e in trace.all_events():
        assert 0 <= e.major < 64
        assert len(e.data) <= 63  # buffer-bounded


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_decoder_total_on_random_buffers(data):
    """Invariant 6 on uniformly random memory."""
    n = data.draw(st.integers(1, 4))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    records = [
        BufferRecord(cpu=0, seq=k,
                     words=rng.integers(0, 2**64, size=64, dtype=np.uint64),
                     committed=64, fill_words=64)
        for k in range(n)
    ]
    reader = TraceReader(registry=default_registry())
    reader.decode_records(records)  # terminates without raising


@given(sequence_strategy)
@settings(**SETTINGS)
def test_serialization_roundtrip(events):
    """Invariant 7: save/load preserves the decoded stream exactly."""
    control, _ = log_sequence(events)
    records = control.flush()
    if not records:
        return
    buf = io.BytesIO()
    save_records(buf, records)
    buf.seek(0)
    reloaded = load_records(buf)
    reader = TraceReader(registry=default_registry())
    a = reader.decode_records(records)
    b = reader.decode_records(reloaded)
    assert [(e.time, e.major, e.minor, e.data) for e in a.events(0)] == \
        [(e.time, e.major, e.minor, e.data) for e in b.events(0)]


# --- reader-path equivalence -------------------------------------------
#
# Invariant 8: the scalar reference reader, the batched (vectorized)
# reader, the boundary-sharded parallel reader, and the columnar
# readers (sequential and parallel structure-of-arrays) are
# bit-identical on the same input — event for event, anomaly for
# anomaly — in both resynchronizing and strict (stop-at-first-garble)
# modes.  The helpers come from the exhaustive equivalence suite in
# test_parallel.py.

from tests.core.test_parallel import (  # noqa: E402
    as_comparable,
    assert_all_paths_identical,
    build_records,
)

_SEEDS = [int(s) for s in
          os.environ.get("FAULT_FUZZ_SEEDS", "0,1,2").split(",")]


def _rerun(seed, keyword):
    return (f"re-run: FAULT_FUZZ_SEEDS={seed} PYTHONPATH=src "
            f"python -m pytest tests/core/test_properties.py -k {keyword}")


def _random_stream(seed):
    """A seeded, arbitrary multi-CPU event stream (drains mid-run so
    buffer boundaries land at random fill levels)."""
    rng = random.Random(seed)
    return build_records(
        n_events=rng.randint(50, 400),
        ncpus=rng.randint(1, 3),
        buffer_words=rng.choice([32, 64]),
        tick=rng.randint(1, 20),
        start=(1 << 32) - 1500 if rng.random() < 0.3 else rng.randint(1, 10**6),
    )


@pytest.mark.parametrize("seed", _SEEDS)
@pytest.mark.parametrize("strict", [False, True],
                         ids=["resync", "strict"])
def test_seeded_roundtrip_identical_across_readers(seed, strict):
    """Invariant 8 on clean seeded streams: scalar == batched == parallel,
    and the decoded stream is anomaly-free."""
    records = _random_stream(seed)
    try:
        trace = assert_all_paths_identical(records, workers=2,
                                           strict=strict)
    except AssertionError as exc:
        raise AssertionError(
            f"reader paths diverged (seed {seed}, strict={strict}); "
            + _rerun(seed, "seeded_roundtrip")) from exc
    assert trace.anomalies == [], (
        f"clean stream decoded with anomalies (seed {seed}); "
        + _rerun(seed, "seeded_roundtrip"))


@pytest.mark.parametrize("seed", _SEEDS)
def test_seeded_corruption_identical_across_readers(seed):
    """Invariant 8 under corruption: random word stomps must not make
    any reader path disagree with the scalar reference, in either
    anomaly-handling mode."""
    rng = random.Random(seed ^ 0xC0FFEE)
    records = _random_stream(seed)
    for rec in records:
        if rng.random() < 0.4:
            w = np.array(rec.words, dtype=np.uint64, copy=True)
            w[rng.randrange(max(1, rec.fill_words))] = rng.getrandbits(64)
            rec.words = w
    for strict in (False, True):
        try:
            assert_all_paths_identical(records, workers=2, strict=strict)
        except AssertionError as exc:
            raise AssertionError(
                f"reader paths diverged on corrupted stream "
                f"(seed {seed}, strict={strict}); "
                + _rerun(seed, "seeded_corruption")) from exc


@pytest.mark.parametrize("seed", _SEEDS)
@pytest.mark.parametrize("kind", RECORD_KINDS)
def test_seeded_fault_injection_identical_across_readers(seed, kind):
    """Invariant 8 under the fault matrix: every damage class the
    injector can produce yields the same events AND the same
    garble/resync verdicts (anomaly for anomaly) on the columnar path
    as on the scalar walk, in both anomaly-handling modes."""
    records = _random_stream(seed)
    if not any(r.fill_words > 0 for r in records):
        return
    damaged, _report = FaultInjector(seed).inject_records(records, kind)
    for strict in (False, True):
        try:
            assert_all_paths_identical(damaged, workers=2, strict=strict)
        except AssertionError as exc:
            raise AssertionError(
                f"reader paths diverged on injected {kind} "
                f"(seed {seed}, strict={strict}); "
                + _rerun(seed, "fault_injection")) from exc


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_reader_paths_identical_on_arbitrary_streams(seed):
    """Invariant 8, hypothesis-driven: low example count because the
    parallel path forks worker processes per example."""
    records = _random_stream(seed)
    reg = default_registry()
    scalar = TraceReader(registry=reg).decode_records(records)
    batched = TraceReader(registry=reg, batch=True).decode_records(records)
    assert as_comparable(batched) == as_comparable(scalar), (
        "batched reader diverged; " + _rerun(seed, "arbitrary_streams"))


@given(sequence_strategy)
@settings(**SETTINGS)
def test_flight_recorder_retains_suffix(events):
    """Flight mode: the snapshot is always a contiguous suffix of what
    was logged (never a gap in the middle)."""
    control, logged = log_sequence(events, buffer_words=32, num_buffers=4,
                                   mode="flight")
    trace = TraceReader(registry=default_registry()).decode_records(
        control.snapshot()
    )
    got = [tuple(e.data) for e in trace.events(0) if e.major == Major.TEST]
    want = [tuple(d) for _, d in logged]
    assert got == want[len(want) - len(got):]
