"""Clock source tests."""

import pytest

from repro.core.timestamps import (
    DriftingTscClock,
    ExpensiveWallClock,
    ManualClock,
    WallClock,
)


class TestManualClock:
    def test_starts_at_origin(self):
        assert ManualClock().now() == 0
        assert ManualClock(100).now() == 100

    def test_advance(self):
        c = ManualClock()
        c.advance(5)
        c.advance(3)
        assert c.now() == 8

    def test_cannot_go_backwards(self):
        c = ManualClock(10)
        with pytest.raises(ValueError):
            c.advance(-1)
        with pytest.raises(ValueError):
            c.set(5)

    def test_same_on_all_cpus(self):
        c = ManualClock(7)
        assert c.now(0) == c.now(3) == 7


class TestWallClock:
    def test_monotonic(self):
        c = WallClock()
        a = c.now()
        b = c.now()
        assert b >= a >= 0

    def test_tick_scaling(self):
        coarse = WallClock(tick_ns=1_000_000)
        fine = WallClock(tick_ns=1)
        assert coarse.now() <= fine.now()

    def test_bad_tick_rejected(self):
        with pytest.raises(ValueError):
            WallClock(tick_ns=0)


class TestExpensiveWallClock:
    def test_still_correct_despite_penalty(self):
        c = ExpensiveWallClock(penalty_iters=10)
        a = c.now()
        assert c.now() >= a

    def test_is_slower_than_cheap_clock(self):
        import time
        cheap, dear = WallClock(), ExpensiveWallClock(penalty_iters=500)
        n = 2000
        t0 = time.perf_counter()
        for _ in range(n):
            cheap.now()
        t1 = time.perf_counter()
        for _ in range(n):
            dear.now()
        t2 = time.perf_counter()
        assert (t2 - t1) > (t1 - t0)


class TestDriftingTscClock:
    def test_per_cpu_offsets_and_rates(self):
        base = [0]
        clock = DriftingTscClock(
            offsets=[0, 1000], rates=[1.0, 1.001], base=lambda: base[0]
        )
        base[0] = 10_000
        assert clock.now(0) == 10_000
        assert clock.now(1) == 1000 + int(1.001 * 10_000)

    def test_drift_grows_over_time(self):
        base = [0]
        clock = DriftingTscClock(offsets=[0, 0], rates=[1.0, 1.0001],
                                 base=lambda: base[0])
        base[0] = 10**6
        early = clock.now(1) - clock.now(0)
        base[0] = 10**8
        late = clock.now(1) - clock.now(0)
        assert late > early > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftingTscClock(offsets=[0], rates=[1.0, 1.0])
        with pytest.raises(ValueError):
            DriftingTscClock(offsets=[0], rates=[0.0])

    def test_ncpus(self):
        clock = DriftingTscClock(offsets=[0, 0, 0], rates=[1, 1, 1])
        assert clock.ncpus == 3
