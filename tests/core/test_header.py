"""Header word pack/unpack: unit + property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.constants import (
    LENGTH_MASK,
    MAJOR_MASK,
    MINOR_MASK,
    TIMESTAMP_MASK,
)
from repro.core.header import pack_header, unpack_header


def test_known_encoding():
    word = pack_header(timestamp=1, length=2, major=3, minor=4)
    assert word == (1 << 32) | (2 << 22) | (3 << 16) | 4


def test_roundtrip_simple():
    word = pack_header(0xDEADBEEF, 17, 5, 0x1234)
    hdr = unpack_header(word)
    assert hdr.timestamp == 0xDEADBEEF
    assert hdr.length == 17
    assert hdr.major == 5
    assert hdr.minor == 0x1234


def test_timestamp_truncated_not_rejected():
    """The logger passes pre-truncated stamps; pack truncates defensively."""
    word = pack_header((1 << 40) | 7, 1, 0, 0)
    assert unpack_header(word).timestamp == 7


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(timestamp=0, length=LENGTH_MASK + 1, major=0, minor=0),
        dict(timestamp=0, length=-1, major=0, minor=0),
        dict(timestamp=0, length=1, major=MAJOR_MASK + 1, minor=0),
        dict(timestamp=0, length=1, major=-1, minor=0),
        dict(timestamp=0, length=1, major=0, minor=MINOR_MASK + 1),
        dict(timestamp=0, length=1, major=0, minor=-1),
    ],
)
def test_out_of_range_fields_rejected(kwargs):
    with pytest.raises(ValueError):
        pack_header(**kwargs)


@given(
    ts=st.integers(0, TIMESTAMP_MASK),
    length=st.integers(0, LENGTH_MASK),
    major=st.integers(0, MAJOR_MASK),
    minor=st.integers(0, MINOR_MASK),
)
def test_roundtrip_property(ts, length, major, minor):
    hdr = unpack_header(pack_header(ts, length, major, minor))
    assert hdr == (ts, length, major, minor)


@given(word=st.integers(0, (1 << 64) - 1))
def test_unpack_pack_is_identity_on_words(word):
    hdr = unpack_header(word)
    assert pack_header(*hdr) == word
