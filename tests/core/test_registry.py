"""Self-describing event registry tests."""

import pytest

from repro.core.majors import Major, MemMinor
from repro.core.packing import pack_values
from repro.core.registry import EventRegistry, EventSpec, default_registry


def test_paper_example_renders():
    """The exact eventParse example from §4.4."""
    spec = EventSpec(
        Major.MEM, MemMinor.FCM_ATTACH_REGION,
        "TRACE_MEM_FCMCOM_ATCH_REG_EXAMPLE", "64 64",
        "Region %0[%llx] attach to FCM %1[%llx]",
    )
    words = pack_values("64 64", [0x800000001022CC98, 0xE100000000003F30])
    assert spec.render(words) == (
        "Region 800000001022cc98 attach to FCM e100000000003f30"
    )


def test_string_event_renders():
    spec = EventSpec(Major.USER, 9, "TRC_X", "64 str",
                     "process %0[%llu] name %1[%s]")
    words = pack_values("64 str", [6, "/shellServer"])
    assert spec.render(words) == "process 6 name /shellServer"


def test_out_of_order_token_references():
    """The paper: numbers do not need to be in order in the third field."""
    spec = EventSpec(Major.TEST, 20, "TRC_OOO", "64 64",
                     "second %1[%llu] first %0[%llu]")
    assert spec.render([10, 20]) == "second 20 first 10"


def test_format_referencing_missing_token_rejected():
    with pytest.raises(ValueError):
        EventSpec(Major.TEST, 21, "TRC_BAD", "64", "oops %1[%llx]")


def test_bad_layout_rejected():
    with pytest.raises(ValueError):
        EventSpec(Major.TEST, 22, "TRC_BAD2", "64 banana", "x")


def test_fixed_data_words():
    assert EventSpec(Major.TEST, 23, "TRC_F0", "", "no data").fixed_data_words == 0
    assert EventSpec(Major.TEST, 24, "TRC_F1", "64 64", "x").fixed_data_words == 2
    assert EventSpec(Major.TEST, 25, "TRC_F2", "8 16 32", "x").fixed_data_words == 1
    assert EventSpec(Major.TEST, 26, "TRC_FS", "str", "x").fixed_data_words is None


def test_render_survives_undecodable_data():
    spec = EventSpec(Major.TEST, 27, "TRC_TRUNC", "64 64", "a %0[%llx] b %1[%llx]")
    out = spec.render([1])  # one word short
    assert "undecodable" in out


def test_registry_register_and_lookup():
    r = EventRegistry()
    spec = r.define(Major.TEST, 30, "TRC_NEW", "64", "v %0[%llu]")
    assert r.lookup(Major.TEST, 30) is spec
    assert r.by_name("TRC_NEW") is spec
    assert (Major.TEST, 30) in r
    assert r.lookup(Major.TEST, 31) is None


def test_duplicate_id_rejected():
    r = EventRegistry()
    r.define(Major.TEST, 30, "TRC_A", "", "a")
    with pytest.raises(ValueError):
        r.define(Major.TEST, 30, "TRC_B", "", "b")


def test_duplicate_name_rejected():
    r = EventRegistry()
    r.define(Major.TEST, 30, "TRC_A", "", "a")
    with pytest.raises(ValueError):
        r.define(Major.TEST, 31, "TRC_A", "", "a again")


def test_default_registry_is_consistent():
    r = default_registry()
    assert len(r) > 40
    names = [spec.name for spec in r]
    assert len(names) == len(set(names))
    # Spot-check the Figure 5 names exist.
    for name in (
        "TRC_USER_RUN_UL_LOADER", "TRC_EXCEPTION_PGFLT",
        "TRC_MEM_FCMCOM_ATCH_REG", "TRC_EXCEPTION_PPC_CALL",
    ):
        assert r.by_name(name) is not None, name


def test_to_markdown_covers_all_events():
    r = default_registry()
    md = r.to_markdown()
    for spec in r:
        assert f"`{spec.name}`" in md, spec.name
    assert "## Major 0 — CONTROL" in md
    # Pipes in format strings must be escaped for the table.
    assert md.count("\n| ") >= len(r)


def test_default_registry_renders_every_fixed_event():
    """Every constant-length spec renders zeroed data without crashing."""
    r = default_registry()
    for spec in r:
        n = spec.fixed_data_words
        if n is not None:
            out = spec.render([0] * n)
            assert isinstance(out, str) and "undecodable" not in out
