"""Layout-driven value packing: unit + property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.packing import (
    compile_layout,
    pack_values,
    packed_length,
    parse_layout,
    unpack_values,
)


class TestParseLayout:
    def test_valid_tokens(self):
        assert parse_layout("8 16 32 64 str") == ("8", "16", "32", "64", "str")

    def test_empty_layout(self):
        assert parse_layout("") == ()

    def test_unknown_token_rejected(self):
        with pytest.raises(ValueError):
            parse_layout("64 24")

    def test_memoized(self):
        # Hot decode paths call parse_layout once per event; the result
        # is cached per layout string (and must therefore be immutable).
        parse_layout.cache_clear()
        a = parse_layout("8 16 32")
        before = parse_layout.cache_info()
        b = parse_layout("8 16 32")
        after = parse_layout.cache_info()
        assert a is b
        assert isinstance(a, tuple)
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_compiled_plan_cached(self):
        compile_layout.cache_clear()
        p1 = compile_layout("32 16 8")
        p2 = compile_layout("32 16 8")
        assert p1 is p2
        assert p1.vectorizable
        assert p1.data_words == 1
        assert not compile_layout("str").vectorizable


class TestPackUnpack:
    def test_single_64(self):
        assert pack_values("64", [0xDEAD]) == [0xDEAD]
        assert unpack_values("64", [0xDEAD]) == [0xDEAD]

    def test_two_64s_take_two_words(self):
        words = pack_values("64 64", [1, 2])
        assert words == [1, 2]

    def test_small_values_share_a_word(self):
        words = pack_values("8 16 32", [0xAB, 0xCDEF, 0x12345678])
        assert len(words) == 1
        assert unpack_values("8 16 32", words) == [0xAB, 0xCDEF, 0x12345678]

    def test_value_never_straddles_word(self):
        # 56 bits used, then a 16-bit value must open a new word.
        words = pack_values("32 16 8 16", [1, 2, 3, 4])
        assert len(words) == 2
        assert unpack_values("32 16 8 16", words) == [1, 2, 3, 4]

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            pack_values("8", [256])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pack_values("16", [-1])

    def test_wrong_count_rejected(self):
        with pytest.raises(ValueError):
            pack_values("64 64", [1])

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            pack_values("64", ["not an int"])
        with pytest.raises(TypeError):
            pack_values("str", [42])

    def test_string_roundtrip(self):
        words = pack_values("str", ["/shellServer"])
        assert unpack_values("str", words) == ["/shellServer"]

    def test_empty_string(self):
        words = pack_values("str", [""])
        assert len(words) == 1  # NUL terminator padded to one word
        assert unpack_values("str", words) == [""]

    def test_string_exactly_word_multiple(self):
        s = "a" * 8  # 8 bytes + NUL -> 2 words
        words = pack_values("str", [s])
        assert len(words) == 2
        assert unpack_values("str", words) == [s]

    def test_mixed_int_string_int(self):
        layout = "64 str 32"
        vals = [7, "baseServers", 99]
        words = pack_values(layout, vals)
        assert unpack_values(layout, words) == vals

    def test_unicode_string(self):
        words = pack_values("str", ["naïve—λ"])
        assert unpack_values("str", words) == ["naïve—λ"]

    def test_truncated_data_detected(self):
        words = pack_values("64 64", [1, 2])
        with pytest.raises(ValueError):
            unpack_values("64 64", words[:1])

    def test_unterminated_string_detected(self):
        words = [int.from_bytes(b"abcdefgh", "little")]  # no NUL anywhere
        with pytest.raises(ValueError):
            unpack_values("str", words)

    def test_packed_length(self):
        assert packed_length("8 8 8", [1, 2, 3]) == 1
        assert packed_length("64 64", [1, 2]) == 2


_fixed_token = st.sampled_from(["8", "16", "32", "64"])


@st.composite
def layout_and_values(draw):
    tokens = draw(st.lists(st.one_of(_fixed_token, st.just("str")), min_size=0, max_size=8))
    values = []
    for tok in tokens:
        if tok == "str":
            alphabet = st.characters(
                min_codepoint=1, max_codepoint=0x2FFF
            )
            values.append(draw(st.text(alphabet, max_size=24)))
        else:
            values.append(draw(st.integers(0, (1 << int(tok)) - 1)))
    return " ".join(tokens), values


@given(layout_and_values())
def test_roundtrip_property(lv):
    layout, values = lv
    assert unpack_values(layout, pack_values(layout, values)) == values
