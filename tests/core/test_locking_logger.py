"""Locking-logger baseline: same observable stream, different sync."""

import threading

from repro.core.buffers import TraceControl
from repro.core.locking_logger import LockingTraceLogger
from repro.core.majors import Major
from repro.core.mask import TraceMask
from repro.core.registry import default_registry
from repro.core.stream import TraceReader
from repro.core.timestamps import ManualClock, WallClock


def make(buffer_words=32, num_buffers=4, clock=None):
    control = TraceControl(buffer_words=buffer_words, num_buffers=num_buffers)
    mask = TraceMask()
    mask.enable_all()
    logger = LockingTraceLogger(
        control, mask, clock or ManualClock(), registry=default_registry()
    )
    logger.start()
    return logger, control


def decode(control):
    return TraceReader(registry=default_registry()).decode_records(control.flush())


def test_basic_event():
    logger, control = make()
    logger.log2(Major.TEST, 2, 5, 6)
    trace = decode(control)
    evs = [e for e in trace.events(0) if e.major == Major.TEST]
    assert evs[0].data == [5, 6]


def test_mask_respected():
    logger, control = make()
    logger.mask.disable_all()
    assert logger.log1(Major.TEST, 1, 1) is False


def test_buffer_rollover_with_filler():
    logger, control = make(buffer_words=32)
    for i in range(100):
        logger.log2(Major.TEST, 2, i, i)
    trace = decode(control)
    evs = [e for e in trace.events(0) if e.major == Major.TEST]
    assert len(evs) == 100
    assert not trace.anomalies
    assert control.stats_fillers >= 1


def test_stream_identical_semantics_to_lockless():
    """Same events in, same decoded stream out — the two loggers differ
    only in synchronization, which is what makes the ablation pure."""
    from repro.core.logger import TraceLogger

    def run(logger_cls):
        control = TraceControl(buffer_words=32, num_buffers=8)
        mask = TraceMask()
        mask.enable_all()
        clock = ManualClock()
        logger = logger_cls(control, mask, clock, registry=default_registry())
        logger.start()
        for i in range(200):
            clock.advance(3)
            logger.log_words(Major.TEST, 1, [i] * ((i % 4) + 1))
        trace = decode(control)
        # Anchor placement at buffer starts legitimately differs between
        # the two reserve strategies; the logged *events* must match.
        return [
            (e.name, e.data, e.time)
            for e in trace.events(0)
            if not e.is_control
        ]

    assert run(TraceLogger) == run(LockingTraceLogger)


def test_concurrent_threads_no_loss():
    logger, control = make(buffer_words=256, num_buffers=8, clock=WallClock())
    n_threads, per_thread = 6, 300
    barrier = threading.Barrier(n_threads)

    def work(tid):
        barrier.wait()
        for i in range(per_thread):
            logger.log2(Major.TEST, 2, tid, i)

    threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    trace = decode(control)
    evs = [e for e in trace.events(0) if e.major == Major.TEST]
    assert len(evs) == n_threads * per_thread
    assert not [a for a in trace.anomalies if a.kind == "garbled"]


def test_shared_control_multiple_cpu_ids():
    """The original-LTT configuration: every CPU logs through one global
    buffer under one lock."""
    control = TraceControl(buffer_words=256, num_buffers=8)
    mask = TraceMask()
    mask.enable_all()
    clock = WallClock()
    lock = threading.Lock()
    loggers = [
        LockingTraceLogger(control, mask, clock, registry=default_registry(),
                           lock=lock, cpu=c)
        for c in range(4)
    ]
    loggers[0].start()
    barrier = threading.Barrier(4)

    def work(cpu):
        barrier.wait()
        for i in range(200):
            loggers[cpu].log2(Major.TEST, 2, cpu, i)

    threads = [threading.Thread(target=work, args=(c,)) for c in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    trace = decode(control)
    evs = [e for e in trace.events(0) if e.major == Major.TEST]
    assert len(evs) == 800
