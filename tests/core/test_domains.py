"""Privilege-separated tracing domain tests (§5 future work)."""

import pytest

from repro.core.domains import TraceDomains, merge_traces
from repro.core.majors import Major
from repro.core.timestamps import ManualClock


def make_domains():
    clock = ManualClock()
    domains = TraceDomains(ncpus=2, clock=clock)
    domains.enable_all()
    domains.register(0, privileged=True)    # kernel
    domains.register(100, privileged=False)  # alice's app
    domains.register(200, privileged=False)  # bob's app
    return domains, clock


def log_some(domains, clock):
    clock.advance(10)
    domains.logger(0, 0).log1(Major.EXC, 4, 1)          # kernel event
    clock.advance(10)
    domains.logger(100, 0).log_event("TRC_USER_APP_MARK", 1, "alice-secret")
    clock.advance(10)
    domains.logger(200, 1).log_event("TRC_USER_APP_MARK", 2, "bob-secret")


def test_unprivileged_sees_only_its_own_data():
    domains, clock = make_domains()
    log_some(domains, clock)
    alice = domains.view(100)
    rendered = " ".join(e.render() for e in alice.all_events())
    assert "alice-secret" in rendered
    assert "bob-secret" not in rendered
    assert not alice.filter(major=Major.EXC)  # no kernel data either


def test_peer_isolation_is_symmetric():
    domains, clock = make_domains()
    log_some(domains, clock)
    bob = domains.view(200)
    rendered = " ".join(e.render() for e in bob.all_events())
    assert "bob-secret" in rendered
    assert "alice-secret" not in rendered


def test_privileged_view_merges_everything_in_time_order():
    domains, clock = make_domains()
    log_some(domains, clock)
    full = domains.view(0)
    rendered = " ".join(e.render() for e in full.all_events())
    assert "alice-secret" in rendered and "bob-secret" in rendered
    assert full.filter(major=Major.EXC)
    times = [e.time for e in full.all_events()]
    assert times == sorted(times)


def test_unprivileged_cannot_request_global_view():
    domains, clock = make_domains()
    with pytest.raises(PermissionError):
        domains.view_privileged(100)


def test_unregistered_pid_rejected():
    domains, clock = make_domains()
    with pytest.raises(KeyError):
        domains.view(999)
    with pytest.raises(KeyError):
        domains.logger(999, 0)


def test_double_registration_rejected():
    domains, clock = make_domains()
    with pytest.raises(ValueError):
        domains.register(100)


def test_shared_mask_gates_all_domains():
    domains, clock = make_domains()
    domains.mask.disable_all()
    domains.mask.enable(Major.CONTROL)
    assert domains.logger(100, 0).log1(Major.TEST, 1, 1) is False
    assert domains.logger(0, 0).log1(Major.TEST, 1, 1) is False


def test_domain_count():
    domains, clock = make_domains()
    assert domains.domain_count == 3  # global + alice + bob


def test_merge_traces_interleaves_by_time():
    domains, clock = make_domains()
    for i in range(20):
        clock.advance(5)
        pid = 100 if i % 2 == 0 else 200
        domains.logger(pid, 0).log1(Major.TEST, 1, i)
    merged = merge_traces(domains.view(100), domains.view(200))
    values = [e.data[0] for e in merged.all_events()
              if e.major == Major.TEST]
    assert values == list(range(20))
