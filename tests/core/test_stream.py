"""Stream decoding: garble detection/recovery, random access, merging."""

import numpy as np
import pytest

from repro.core.buffers import BufferRecord, TraceControl
from repro.core.header import pack_header
from repro.core.logger import TraceLogger
from repro.core.majors import ControlMinor, Major
from repro.core.mask import TraceMask
from repro.core.registry import default_registry
from repro.core.stream import (
    TraceReader,
    decode_from_offset,
    find_resync,
    flat_records,
    scan_buffer,
    sdelta32,
    seek_boundary,
)
from repro.core.timestamps import ManualClock


def build_trace(n_events=300, buffer_words=32, data_words=1, tick=5):
    control = TraceControl(buffer_words=buffer_words, num_buffers=8)
    mask = TraceMask()
    mask.enable_all()
    clock = ManualClock()
    logger = TraceLogger(control, mask, clock, registry=default_registry())
    logger.start()
    for i in range(n_events):
        clock.advance(tick)
        logger.log_words(Major.TEST, 1, [i] * data_words)
    return control


class TestSdelta32:
    def test_zero(self):
        assert sdelta32(5, 5) == 0

    def test_forward(self):
        assert sdelta32(10, 3) == 7

    def test_backward(self):
        assert sdelta32(3, 10) == -7

    def test_wrap_forward(self):
        assert sdelta32(5, (1 << 32) - 5) == 10

    def test_wrap_backward(self):
        assert sdelta32((1 << 32) - 5, 5) == -10

    def test_extremes(self):
        assert sdelta32((1 << 31) - 1, 0) == (1 << 31) - 1
        assert sdelta32(1 << 31, 0) == -(1 << 31)


class TestGarbleDetection:
    def _records(self):
        control = build_trace()
        return control.flush()

    def test_clean_trace_no_anomalies(self):
        reader = TraceReader(registry=default_registry())
        trace = reader.decode_records(self._records())
        assert trace.anomalies == []

    def test_zeroed_header_detected_and_recovered(self):
        """A writer killed between reserve and log leaves a zero header
        (the buffer was zeroed ahead); the reader flags it and skips to
        the next alignment boundary — §3.1's recovery story."""
        records = self._records()
        victim = records[1]
        reader = TraceReader(registry=default_registry())
        # Zero a genuine event *header* (not a data word) mid-buffer.
        probe = reader.decode_buffer(victim, [])
        target = next(e.offset for e in probe if e.offset > 0)
        victim.words[target] = 0  # simulate the unwritten hole
        trace = reader.decode_records(records)
        garbled = [a for a in trace.anomalies if a.kind == "garbled"]
        assert len(garbled) == 1
        assert garbled[0].seq == victim.seq
        # Later buffers decode fine: recovery happened at the boundary.
        later = [e for e in trace.events(0) if e.seq > victim.seq]
        assert later

    def test_length_overrunning_buffer_detected(self):
        records = self._records()
        victim = records[0]
        # Header claiming 900 words in a 32-word buffer.
        victim.words[4] = pack_header(100, 900, Major.TEST, 1)
        trace = TraceReader(registry=default_registry()).decode_records(records)
        assert any(a.kind == "garbled" for a in trace.anomalies)

    def test_timestamp_regression_detected(self):
        records = self._records()
        victim = records[2]
        # Rewrite an event header with a far-backwards timestamp.
        victim.words[10] = pack_header(3, 2, Major.TEST, 1)
        trace = TraceReader(registry=default_registry()).decode_records(records)
        garbled = [a for a in trace.anomalies if a.kind == "garbled"]
        assert any("regression" in a.detail for a in garbled)

    def test_committed_mismatch_detected(self):
        records = self._records()
        records[1].committed -= 3  # a killed writer never committed
        trace = TraceReader(registry=default_registry()).decode_records(records)
        assert any(a.kind == "committed-mismatch" for a in trace.anomalies)

    def test_truncated_extended_filler_detected(self):
        bw = 4096
        words = np.zeros(bw, dtype=np.uint64)
        words[0] = pack_header(1, 0, Major.CONTROL, ControlMinor.FILLER_EXT)
        words[1] = 10**9  # absurd span
        rec = BufferRecord(cpu=0, seq=0, words=words, committed=bw, fill_words=bw)
        trace = TraceReader().decode_records([rec])
        assert any("filler span" in a.detail for a in trace.anomalies)


class TestRecovery:
    """In-buffer resynchronization after a garble (the tentpole)."""

    def _records(self):
        return build_trace(n_events=300, data_words=2).flush()

    def test_salvages_events_after_mid_buffer_garble(self):
        records = self._records()
        victim = max(records, key=lambda r: r.fill_words)
        offsets = scan_buffer(victim.words, victim.fill_words).offsets
        mid = offsets[len(offsets) // 2]
        victim.words[mid] = 0

        reg = default_registry()
        loose = TraceReader(registry=reg).decode_records(records)
        strict = TraceReader(registry=reg, strict=True).decode_records(records)
        n_loose = sum(len(v) for v in loose.events_by_cpu.values())
        n_strict = sum(len(v) for v in strict.events_by_cpu.values())
        assert n_loose > n_strict
        kinds = [a.kind for a in loose.anomalies]
        assert kinds.count("garbled") == 1
        assert kinds.count("recovered-region") == 1
        # The salvage report names where scanning resumed.
        rr = next(a for a in loose.anomalies if a.kind == "recovered-region")
        assert rr.seq == victim.seq and "resynchronized" in rr.detail

    def test_strict_mode_emits_no_recovered_region(self):
        records = self._records()
        victim = max(records, key=lambda r: r.fill_words)
        offsets = scan_buffer(victim.words, victim.fill_words).offsets
        victim.words[offsets[len(offsets) // 2]] = 0
        trace = TraceReader(registry=default_registry(),
                            strict=True).decode_records(records)
        kinds = [a.kind for a in trace.anomalies]
        assert "garbled" in kinds
        assert "recovered-region" not in kinds

    def test_find_resync_locates_next_real_header(self):
        records = self._records()
        victim = max(records, key=lambda r: r.fill_words)
        words = victim.words
        scan = scan_buffer(words, victim.fill_words)
        offsets = scan.offsets
        mid_i = len(offsets) // 2
        words[offsets[mid_i]] = 0

        fresh = scan_buffer(words, victim.fill_words)

        def fields(o):
            return (int(fresh.cols.ts32[o]), int(fresh.cols.length[o]),
                    int(fresh.cols.major[o]), int(fresh.cols.minor[o]))

        prev_ts32 = int(fresh.cols.ts32[offsets[mid_i - 1]])
        resume = find_resync(fields, offsets[mid_i] + 1, victim.fill_words,
                             prev_ts32)
        assert resume == offsets[mid_i + 1]

    def test_find_resync_gives_up_on_pure_garbage(self):
        rng = np.random.default_rng(1)
        words = rng.integers(1, 1 << 63, size=64, dtype=np.uint64)
        # Make every word an implausible header: length 0 forces that.
        words &= ~np.uint64(0x3FF << 22)
        scan = scan_buffer(words, 64)

        def fields(o):
            return (int(scan.cols.ts32[o]), int(scan.cols.length[o]),
                    int(scan.cols.major[o]), int(scan.cols.minor[o]))

        assert find_resync(fields, 0, 64, None) is None

    def test_multiple_garbles_in_one_buffer(self):
        records = self._records()
        victim = max(records, key=lambda r: r.fill_words)
        offsets = scan_buffer(victim.words, victim.fill_words).offsets
        assert len(offsets) >= 8
        victim.words[offsets[2]] = 0
        victim.words[offsets[5]] = 0
        trace = TraceReader(registry=default_registry()).decode_records(records)
        kinds = [a.kind for a in trace.anomalies]
        assert kinds.count("garbled") == 2
        assert kinds.count("recovered-region") == 2

    def test_decode_from_offset_strict_flag(self):
        records = [r for r in self._records() if not r.partial]
        victim = max(records, key=lambda r: r.fill_words)
        offsets = scan_buffer(victim.words, victim.fill_words).offsets
        victim.words[offsets[len(offsets) // 2]] = 0
        flat = np.concatenate([r.words for r in records])
        bw = len(records[0].words)
        reg = default_registry()
        loose = decode_from_offset(flat, bw, 0, registry=reg)
        strict = decode_from_offset(flat, bw, 0, registry=reg, strict=True)
        assert len(loose.events(0)) > len(strict.events(0))
        assert any(a.kind == "recovered-region" for a in loose.anomalies)


class TestRandomAccess:
    def test_decode_single_buffer_independently(self):
        """Random access: any buffer decodes alone, with absolute times,
        thanks to its embedded anchor."""
        control = build_trace(n_events=500)
        records = control.flush()
        mid = records[len(records) // 2]
        reader = TraceReader(registry=default_registry())
        solo = reader.decode_one(mid)
        evs = [e for e in solo.events(0) if e.major == Major.TEST]
        assert evs
        assert all(e.time is not None for e in evs)
        # Times agree with a full sequential decode.
        full = reader.decode_records(records)
        full_times = {
            (e.seq, e.offset): e.time for e in full.events(0)
        }
        for e in evs:
            assert full_times[(e.seq, e.offset)] == e.time

    def test_flat_array_seek_matches_sequential(self):
        """§3.2 end-to-end: concatenate raw buffers, seek to an arbitrary
        offset, snap to the boundary, and get identical events."""
        control = build_trace(n_events=400, buffer_words=32)
        records = [r for r in control.flush() if not r.partial]
        flat = np.concatenate([r.words for r in records])
        bw = 32
        reader = TraceReader(registry=default_registry(), check_committed=False)
        seq_trace = reader.decode_records(flat_records(flat, bw))
        arbitrary_offset = 3 * bw + 17
        sub = decode_from_offset(flat, bw, arbitrary_offset,
                                 registry=default_registry())
        start_buf = arbitrary_offset // bw
        expect = [e for e in seq_trace.events(0) if e.seq >= start_buf]
        got = sub.events(0)
        assert [(e.major, e.minor, e.data) for e in got] == [
            (e.major, e.minor, e.data) for e in expect
        ]

    def test_seek_boundary(self):
        assert seek_boundary(0, 32) == 0
        assert seek_boundary(31, 32) == 0
        assert seek_boundary(32, 32) == 32
        assert seek_boundary(100, 32) == 96

    def test_seek_boundary_rejects_nonsense(self):
        """A negative offset or non-positive geometry names no boundary;
        floor division used to 'snap' them somewhere silently."""
        with pytest.raises(ValueError):
            seek_boundary(-1, 32)
        with pytest.raises(ValueError):
            seek_boundary(0, 0)
        with pytest.raises(ValueError):
            seek_boundary(17, -32)

    def test_decode_from_offset_rejects_out_of_range(self):
        """Pre-fix, a negative offset sliced from the array's *tail* and
        a past-EOF offset decoded an empty trace with an overshot start
        sequence — both silently wrong."""
        control = build_trace(n_events=100, buffer_words=32)
        records = [r for r in control.flush() if not r.partial]
        flat = np.concatenate([r.words for r in records])
        reg = default_registry()
        with pytest.raises(ValueError):
            decode_from_offset(flat, 32, -1, registry=reg)
        with pytest.raises(ValueError):
            decode_from_offset(flat, 32, len(flat), registry=reg)
        with pytest.raises(ValueError):
            decode_from_offset(flat, 32, len(flat) + 999, registry=reg)

    def test_decode_from_offset_empty_trace_offset_zero(self):
        """Offset 0 into an empty word pool stays legal: an empty trace
        decodes to no events, not an error."""
        empty = decode_from_offset(
            np.zeros(0, dtype=np.uint64), 32, 0, registry=default_registry()
        )
        assert sum(len(v) for v in empty.events_by_cpu.values()) == 0


class TestTraceContainer:
    def test_filter_by_name_and_major(self):
        control = build_trace(n_events=50)
        trace = TraceReader(registry=default_registry()).decode_records(
            control.flush()
        )
        assert len(trace.filter(name="TRC_TEST_EVENT1")) == 50
        assert len(trace.filter(major=Major.TEST)) == 50
        assert trace.filter(major=Major.MEM) == []

    def test_control_events_excluded_by_default(self):
        control = build_trace(n_events=50)
        trace = TraceReader(registry=default_registry()).decode_records(
            control.flush()
        )
        assert all(not e.is_control for e in trace.filter())
        with_control = trace.filter(include_control=True)
        assert any(e.is_control for e in with_control)

    def test_fillers_included_when_requested(self):
        control = build_trace(n_events=300, data_words=2)
        reader = TraceReader(registry=default_registry(), include_fillers=True)
        trace = reader.decode_records(control.flush())
        assert any(e.is_filler for e in trace.events(0))

    def test_unknown_event_renders_hex(self):
        control = TraceControl(buffer_words=32, num_buffers=4)
        mask = TraceMask()
        mask.enable_all()
        logger = TraceLogger(control, mask, ManualClock())
        logger.start()
        logger.log1(40, 9, 0xFEED)  # unregistered major
        trace = TraceReader(registry=default_registry()).decode_records(
            control.flush()
        )
        ev = [e for e in trace.events(0) if e.major == 40][0]
        assert ev.name == "TRC_UNKNOWN_40_9"
        assert "0xfeed" in ev.render()
