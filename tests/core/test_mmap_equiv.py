"""mmap zero-copy reads vs buffered read(): bit-identical, always.

The zero-copy fast path (``TraceFileReader(use_mmap=True)``, the
default for real files) must be indistinguishable from the historical
``read()`` path in every observable way — records, recovery issues,
strict-mode exceptions — across the whole file-fault damage matrix.
Seeds come from ``FAULT_FUZZ_SEEDS`` (comma-separated, default
``0,1,2``) so CI can sweep fresh seeds every run; every assertion
message echoes the seed for local reproduction.
"""

import io
import os
import sys

import numpy as np
import pytest

from repro.core.faults import FILE_KINDS, FaultInjector
from repro.core.parallel import (
    decode_records_columnar_parallel,
    decode_records_parallel,
)
from repro.core.stream import TraceReader
from repro.core.writer import TraceFileReader, load_records, save_records
from tests.core.test_parallel import as_comparable, build_records

SEEDS = [int(s) for s in
         os.environ.get("FAULT_FUZZ_SEEDS", "0,1,2").split(",")]


@pytest.fixture(scope="module")
def records():
    return build_records(n_events=400, ncpus=2)


@pytest.fixture(scope="module")
def clean_path(records, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("mmap_equiv") / "clean.k42")
    save_records(path, records)
    return path


def _read_with(path, use_mmap, strict):
    """(records, issues, read_path, exception) for one reader config."""
    with open(path, "rb") as fh:
        reader = TraceFileReader(fh, strict=strict, use_mmap=use_mmap)
        try:
            recs = reader.read_all()
        except (ValueError, EOFError) as exc:
            return None, list(reader.issues), reader.read_path, exc
        return recs, list(reader.issues), reader.read_path, None


def _assert_same_records(a, b, why):
    assert len(a) == len(b), why
    for ra, rb in zip(a, b):
        assert ra.cpu == rb.cpu and ra.seq == rb.seq, why
        assert ra.fill_words == rb.fill_words, why
        assert np.array_equal(ra.words, rb.words), why


def test_clean_trace_identical(clean_path, records):
    for strict in (False, True):
        m_recs, m_iss, m_path, m_exc = _read_with(clean_path, True, strict)
        r_recs, r_iss, r_path, r_exc = _read_with(clean_path, False, strict)
        assert m_path == "mmap" and r_path == "read"
        assert m_exc is None and r_exc is None
        assert m_iss == r_iss == []
        _assert_same_records(m_recs, r_recs, f"strict={strict}")
        _assert_same_records(m_recs, records, f"strict={strict}")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("strict", [False, True])
@pytest.mark.parametrize("kind", FILE_KINDS)
def test_damage_matrix_identical(records, tmp_path, kind, strict, seed):
    """Same records, same issue strings, same strict-mode exception."""
    buf = io.BytesIO()
    save_records(buf, records)
    damaged, _report = FaultInjector(seed).inject_trace_bytes(
        buf.getvalue(), kind)
    path = str(tmp_path / f"{kind}-{seed}.k42")
    with open(path, "wb") as fh:
        fh.write(damaged)

    why = (f"kind={kind} strict={strict} seed={seed}; re-run: "
           f"FAULT_FUZZ_SEEDS={seed} PYTHONPATH=src python -m pytest "
           f"tests/core/test_mmap_equiv.py -k damage_matrix")
    m_recs, m_iss, m_path, m_exc = _read_with(path, True, strict)
    r_recs, r_iss, r_path, r_exc = _read_with(path, False, strict)
    assert m_path == "mmap" and r_path == "read", why
    assert (m_exc is None) == (r_exc is None), why
    if m_exc is not None:
        assert type(m_exc) is type(r_exc), why
        assert str(m_exc) == str(r_exc), why
    else:
        _assert_same_records(m_recs, r_recs, why)
    assert m_iss == r_iss, why


def test_bytesio_falls_back_to_read(records):
    buf = io.BytesIO()
    save_records(buf, records)
    buf.seek(0)
    reader = TraceFileReader(buf, use_mmap=True)
    assert reader.read_path == "read"
    got = reader.read_all()
    _assert_same_records(got, records, "BytesIO fallback")


def test_no_mmap_flag_respected(clean_path):
    with open(clean_path, "rb") as fh:
        assert TraceFileReader(fh, use_mmap=False).read_path == "read"
    with open(clean_path, "rb") as fh:
        assert TraceFileReader(fh, use_mmap=True).read_path == "mmap"


@pytest.mark.skipif(sys.byteorder != "little",
                    reason="zero-copy provenance is little-endian only")
def test_mmap_words_are_readonly_views(clean_path):
    """Zero-copy words must refuse in-place mutation (shared pages)."""
    recs = load_records(clean_path, use_mmap=True)
    assert any(r._file_ref is not None for r in recs)
    stamped = next(r for r in recs if r._file_ref is not None)
    assert not stamped.words.flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        stamped.words[0] = 1


def test_mmap_records_decode_parallel_identical(clean_path):
    """File-backed records ride the descriptor path through the pool
    and still decode exactly like a sequential scalar walk."""
    recs = load_records(clean_path, use_mmap=True)
    seq = TraceReader().decode_records(load_records(clean_path,
                                                    use_mmap=False))
    par = decode_records_parallel(recs, workers=2)
    assert as_comparable(par) == as_comparable(seq)
    col = decode_records_columnar_parallel(recs, workers=2)
    assert as_comparable(col) == as_comparable(seq)
