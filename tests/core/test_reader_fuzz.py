"""Fuzzing the binary readers: they must be total on hostile input.

Every parser that consumes external bytes (trace files, crash dumps,
LTT exports) must either succeed or raise ValueError/EOFError — never
any other exception, never a hang — regardless of input.
"""

import io

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.crashdump import read_dump
from repro.core.writer import TraceFileReader
from repro.ltt.export import read_ltt

SETTINGS = dict(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

junk = st.binary(min_size=0, max_size=4096)


@given(junk)
@settings(**SETTINGS)
def test_trace_file_reader_total(data):
    try:
        reader = TraceFileReader(io.BytesIO(data))
        reader.read_all()
    except (ValueError, EOFError):
        pass


@given(junk)
@settings(**SETTINGS)
def test_crash_dump_reader_total(data):
    try:
        dump = read_dump(data)
        assert isinstance(dump.records, list)
    except (ValueError, EOFError):
        pass


@given(junk)
@settings(**SETTINGS)
def test_ltt_reader_total(data):
    try:
        cpu, events = read_ltt(data)
        assert isinstance(events, list)
    except (ValueError, EOFError):
        pass


@st.composite
def mutated_trace_file(draw):
    """A valid trace file with random byte mutations applied."""
    from repro.core.buffers import TraceControl
    from repro.core.logger import TraceLogger
    from repro.core.majors import Major
    from repro.core.mask import TraceMask
    from repro.core.timestamps import ManualClock
    from repro.core.writer import save_records

    control = TraceControl(buffer_words=32, num_buffers=4)
    mask = TraceMask()
    mask.enable_all()
    clock = ManualClock()
    logger = TraceLogger(control, mask, clock)
    logger.start()
    for i in range(draw(st.integers(1, 60))):
        clock.advance(2)
        logger.log1(Major.TEST, 1, i)
    buf = io.BytesIO()
    save_records(buf, control.flush())
    data = bytearray(buf.getvalue())
    for _ in range(draw(st.integers(1, 12))):
        pos = draw(st.integers(0, len(data) - 1))
        data[pos] = draw(st.integers(0, 255))
    return bytes(data)


@given(mutated_trace_file())
@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_mutated_trace_files_never_crash_decode(data):
    """File-level corruption flows through load + decode without any
    unexpected exception; damage surfaces as anomalies."""
    from repro.core.registry import default_registry
    from repro.core.stream import TraceReader
    from repro.core.writer import load_records

    try:
        records = load_records(io.BytesIO(data))
    except (ValueError, EOFError):
        return
    reader = TraceReader(registry=default_registry())
    trace = reader.decode_records(records)  # must terminate cleanly
    for e in trace.all_events():
        assert 0 <= e.major < 64
