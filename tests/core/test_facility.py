"""Unified facility tests: one infrastructure, many uses (§2 goals)."""

import pytest

from repro.core.facility import TraceFacility
from repro.core.majors import ControlMinor, Major
from repro.core.timestamps import ManualClock


def make(ncpus=2, **kw):
    kw.setdefault("buffer_words", 128)
    kw.setdefault("num_buffers", 4)
    kw.setdefault("clock", ManualClock())
    return TraceFacility(ncpus=ncpus, **kw)


def test_goal1_unified_events_from_all_sources():
    """Kernel, server, library, application events land in one stream."""
    fac = make()
    fac.enable_all()
    fac.log(0, Major.EXC, 0, (0xC0FFEE, 0x1000))          # kernel
    fac.log(0, Major.SYSCALL, 0, (1, 42))                  # emulation layer
    fac.log(1, Major.USER, 2, ())                          # application
    fac.log(1, Major.LOCK, 1, (0xAB, 1))                   # server lock path
    trace = fac.decode()
    majors = {e.major for e in trace.filter()}
    assert {Major.EXC, Major.SYSCALL, Major.USER, Major.LOCK} <= majors


def test_goal4_dynamic_enable_disable():
    fac = make()
    fac.log(0, Major.TEST, 1, (1,))  # mask off: dropped
    fac.enable(Major.TEST)
    fac.log(0, Major.TEST, 1, (2,))
    fac.disable(Major.TEST)
    fac.log(0, Major.TEST, 1, (3,))
    trace = fac.decode()
    data = [e.data[0] for e in trace.filter(major=Major.TEST)]
    assert data == [2]


def test_mask_changes_are_logged():
    fac = make()
    fac.enable(Major.TEST)
    trace = fac.decode()
    changes = trace.filter(
        major=Major.CONTROL, minor=ControlMinor.MASK_CHANGE, include_control=True
    )
    assert changes


def test_control_events_always_flow():
    fac = make()
    fac.disable_all()
    assert fac.mask.enabled(Major.CONTROL)


def test_per_cpu_streams_separate():
    fac = make(ncpus=3)
    fac.enable_all()
    clock = fac.clock
    for cpu in range(3):
        clock.advance(1)
        fac.log(cpu, Major.TEST, 1, (cpu,))
    trace = fac.decode()
    for cpu in range(3):
        evs = [e for e in trace.events(cpu) if e.major == Major.TEST]
        assert [e.data[0] for e in evs] == [cpu]


def test_log_event_by_name():
    fac = make()
    fac.enable_all()
    fac.log_event(0, "TRC_USER_RETURNED_MAIN", 17)
    trace = fac.decode()
    assert trace.filter(name="TRC_USER_RETURNED_MAIN")[0].values() == [17]


def test_null_kind_logs_nothing():
    fac = make(kind="null")
    fac.enable_all()
    assert fac.log(0, Major.TEST, 1, (1,)) is False
    assert fac.flush() == []
    assert fac.decode().all_events() == []


def test_locking_kind_produces_same_stream_shape():
    fac = make(kind="locking")
    fac.enable_all()
    for i in range(50):
        fac.clock.advance(1)
        fac.log(0, Major.TEST, 1, (i,))
    trace = fac.decode()
    assert len(trace.filter(major=Major.TEST)) == 50


def test_locking_shared_kind_single_control():
    fac = make(kind="locking-shared", ncpus=4)
    fac.enable_all()
    assert len(fac.controls) == 1
    for cpu in range(4):
        fac.log(cpu, Major.TEST, 1, (cpu,))
    trace = fac.decode()
    assert len(trace.filter(major=Major.TEST)) == 4


def test_stats_aggregate_across_cpus():
    fac = make(ncpus=2)
    fac.enable_all()
    fac.log(0, Major.TEST, 1, (1,))
    fac.log(1, Major.TEST, 1, (1,))
    stats = fac.stats()
    assert stats["events_logged"] >= 2
    assert "cas_retries" in stats


def test_flight_mode_snapshot():
    fac = make(mode="flight")
    fac.enable_all()
    for i in range(500):
        fac.clock.advance(1)
        fac.log(0, Major.TEST, 1, (i,))
    records = fac.snapshot()
    trace = fac.decode(records)
    evs = [e for e in trace.events(0) if e.major == Major.TEST]
    assert evs and evs[-1].data[0] == 499


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        TraceFacility(ncpus=0)
    with pytest.raises(ValueError):
        TraceFacility(kind="bogus")  # type: ignore[arg-type]
