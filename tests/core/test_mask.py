"""Trace mask tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.constants import NUM_MAJORS
from repro.core.majors import Major
from repro.core.mask import TraceMask


def test_default_disabled():
    m = TraceMask()
    assert not any(m.enabled(i) for i in range(NUM_MAJORS))


def test_enable_single():
    m = TraceMask()
    m.enable(Major.MEM)
    assert m.enabled(Major.MEM)
    assert not m.enabled(Major.PROC)


def test_enable_multiple_and_disable():
    m = TraceMask()
    m.enable(1, 2, 3)
    m.disable(2)
    assert m.enabled_majors() == [1, 3]


def test_enable_all_disable_all():
    m = TraceMask()
    m.enable_all()
    assert m.enabled_majors() == list(range(NUM_MAJORS))
    m.disable_all()
    assert m.enabled_majors() == []


def test_set_exactly():
    m = TraceMask()
    m.enable_all()
    m.set_exactly([5, 9])
    assert m.enabled_majors() == [5, 9]


def test_out_of_range_rejected():
    m = TraceMask()
    with pytest.raises(ValueError):
        m.enable(64)
    with pytest.raises(ValueError):
        m.disable(-1)


def test_constructor_truncates_to_64_bits():
    m = TraceMask(1 << 70 | 0b101)
    assert m.enabled_majors() == [0, 2]


def test_single_comparison_semantics():
    """The fast path is literally `mask & (1 << major)`."""
    m = TraceMask()
    m.enable(6)
    assert m.value & (1 << 6)
    assert not m.value & (1 << 7)


@given(majors=st.sets(st.integers(0, NUM_MAJORS - 1)))
def test_enable_disable_roundtrip(majors):
    m = TraceMask()
    m.enable(*majors)
    assert set(m.enabled_majors()) == majors
    m.disable(*majors)
    assert m.enabled_majors() == []
