"""Trace file serialization tests."""

import io

import numpy as np
import pytest

from repro.core.buffers import BufferRecord, TraceControl
from repro.core.logger import TraceLogger
from repro.core.majors import Major
from repro.core.mask import TraceMask
from repro.core.registry import default_registry
from repro.core.stream import TraceReader
from repro.core.timestamps import ManualClock
from repro.core.writer import (
    TraceFileReader,
    TraceFileWriter,
    load_records,
    save_records,
)


def make_records(n_events=300, buffer_words=32):
    control = TraceControl(buffer_words=buffer_words, num_buffers=8)
    mask = TraceMask()
    mask.enable_all()
    clock = ManualClock()
    logger = TraceLogger(control, mask, clock, registry=default_registry())
    logger.start()
    for i in range(n_events):
        clock.advance(2)
        logger.log1(Major.TEST, 1, i)
    return control.flush()


def test_roundtrip_memory():
    records = make_records()
    buf = io.BytesIO()
    save_records(buf, records)
    buf.seek(0)
    loaded = load_records(buf)
    assert len(loaded) == len(records)
    for a, b in zip(records, loaded):
        assert a.cpu == b.cpu and a.seq == b.seq
        assert a.committed == b.committed
        assert a.fill_words == b.fill_words
        assert a.partial == b.partial
        assert np.array_equal(a.words, b.words)


def test_roundtrip_file(tmp_path):
    records = make_records()
    path = str(tmp_path / "trace.k42")
    save_records(path, records)
    loaded = load_records(path)
    trace_a = TraceReader(registry=default_registry()).decode_records(records)
    trace_b = TraceReader(registry=default_registry()).decode_records(loaded)
    assert [(e.name, e.data, e.time) for e in trace_a.events(0)] == [
        (e.name, e.data, e.time) for e in trace_b.events(0)
    ]


def test_random_frame_access():
    """Fixed-size frames make frame k a seek, not a scan — the file-level
    analogue of the alignment-boundary property."""
    records = make_records(n_events=600)
    buf = io.BytesIO()
    save_records(buf, records)
    buf.seek(0)
    reader = TraceFileReader(buf)
    assert reader.frame_count() == len(records)
    k = len(records) // 2
    rec = reader.read_frame(k)
    assert rec.seq == records[k].seq
    assert np.array_equal(rec.words, records[k].words)


def test_bad_magic_rejected():
    buf = io.BytesIO(b"NOTATRACEFILE HEADER PADDING")
    with pytest.raises(ValueError):
        TraceFileReader(buf)


def test_truncated_header_rejected():
    buf = io.BytesIO(b"K42")
    with pytest.raises(ValueError):
        TraceFileReader(buf)


def test_partial_tail_with_valid_header_is_growing():
    """A mid-payload cut leaves a well-formed frame header prefix at EOF —
    exactly what an in-progress write looks like.  The tail is flagged
    (``trailing_bytes``/``tail_state``) but is NOT damage: ``issues``
    stays empty, so ``doctor`` stops prescribing salvage for a file that
    is simply still being written."""
    records = make_records(n_events=100)
    buf = io.BytesIO()
    save_records(buf, records)
    data = buf.getvalue()[:-10]  # chop the last frame mid-payload
    reader = TraceFileReader(io.BytesIO(data))
    n = reader.frame_count()
    assert reader.trailing_bytes > 0
    assert reader.tail_state == "growing"
    assert reader.issues == []
    with pytest.raises(IndexError):
        reader.read_frame(n)  # the partial one is out of range
    # read_all still drops the partial tail without complaining.
    reader2 = TraceFileReader(io.BytesIO(data))
    assert len(reader2.read_all()) == n
    assert reader2.tail_state == "growing"
    assert reader2.issues == []


def test_partial_tail_mid_header_is_growing():
    """Even a cut inside the frame *header* reads as growing while the
    visible bytes still match the frame magic."""
    records = make_records(n_events=100)
    buf = io.BytesIO()
    save_records(buf, records)
    data = buf.getvalue()
    reader_full = TraceFileReader(io.BytesIO(data))
    frame_size = reader_full.frame_size
    for keep in (2, 7):   # inside the magic; inside the header
        cut = data[:-(frame_size - keep)]
        reader = TraceFileReader(io.BytesIO(cut))
        reader.frame_count()
        assert reader.tail_state == "growing", keep
        assert reader.issues == []


def test_partial_tail_with_garbage_is_truncated():
    """A partial tail that can never become a valid frame is damage:
    verdict ``truncated``, reported on ``issues`` (the pre-split
    behavior for every partial tail)."""
    records = make_records(n_events=100)
    buf = io.BytesIO()
    save_records(buf, records)
    data = buf.getvalue() + b"\xde\xad\xbe\xef\xff\xff"  # junk tail
    reader = TraceFileReader(io.BytesIO(data))
    reader.frame_count()
    assert reader.trailing_bytes == 6
    assert reader.tail_state == "truncated"
    assert any("truncated trailing frame" in s for s in reader.issues)


def test_partial_tail_implausible_header_is_truncated():
    """A full header in the tail whose geometry is implausible (magic
    intact, fill_words impossible) cannot be an in-progress frame."""
    import struct

    records = make_records(n_events=100)
    buf = io.BytesIO()
    save_records(buf, records)
    data = buf.getvalue()
    bad_header = struct.pack("<IIQQIB3x", 0x4B42BEEF, 0, 99, 0,
                             10 ** 6, 0)  # fill_words >> buffer_words
    reader = TraceFileReader(io.BytesIO(data + bad_header + b"\x00" * 8))
    reader.frame_count()
    assert reader.tail_state == "truncated"
    assert any("truncated trailing frame" in s for s in reader.issues)


def test_complete_file_tail_state():
    records = make_records(n_events=100)
    buf = io.BytesIO()
    save_records(buf, records)
    buf.seek(0)
    reader = TraceFileReader(buf)
    reader.frame_count()
    assert reader.tail_state == "complete"
    assert reader.trailing_bytes == 0


def test_read_frame_out_of_range():
    records = make_records(n_events=100)
    buf = io.BytesIO()
    save_records(buf, records)
    buf.seek(0)
    reader = TraceFileReader(buf)
    n = reader.frame_count()
    with pytest.raises(IndexError):
        reader.read_frame(n)
    with pytest.raises(IndexError):
        reader.read_frame(-1)
    with pytest.raises(IndexError):
        reader.read_frame(n + 100)


def test_mismatched_record_size_rejected():
    buf = io.BytesIO()
    w = TraceFileWriter(buf, buffer_words=32)
    bad = BufferRecord(cpu=0, seq=0, words=np.zeros(16, dtype=np.uint64),
                       committed=0, fill_words=16)
    with pytest.raises(ValueError):
        w.write_record(bad)


def test_save_empty_rejected():
    """Without an explicit geometry an empty save is still an error."""
    with pytest.raises(ValueError):
        save_records(io.BytesIO(), [])


def test_save_empty_roundtrip():
    """An empty trace with explicit geometry is a valid header-only file."""
    buf = io.BytesIO()
    written = save_records(buf, [], buffer_words=32)
    assert written == 0
    buf.seek(0)
    assert load_records(buf) == []
    buf.seek(0)
    reader = TraceFileReader(buf)
    assert reader.buffer_words == 32
    assert reader.frame_count() == 0


def test_damaged_frame_resync():
    """A stomped frame magic loses that frame, not the rest of the file."""
    records = make_records(n_events=300)
    buf = io.BytesIO()
    save_records(buf, records)
    data = bytearray(buf.getvalue())
    buf.seek(0)
    frame_size = TraceFileReader(buf).frame_size
    victim = len(records) // 2
    off = 16 + victim * frame_size  # file header is 16 bytes
    data[off:off + 4] = b"\x00\x00\x00\x00"  # stomp the frame magic

    reader = TraceFileReader(io.BytesIO(bytes(data)))
    loaded = reader.read_all()
    assert len(loaded) == len(records) - 1
    assert [r.seq for r in loaded] == [
        r.seq for i, r in enumerate(records) if i != victim
    ]
    assert any("damaged frame" in s for s in reader.issues)

    with pytest.raises(ValueError):
        TraceFileReader(io.BytesIO(bytes(data)), strict=True).read_all()


def test_multi_cpu_frames_interleave(tmp_path):
    recs0 = make_records(n_events=100)
    recs1 = make_records(n_events=100)
    for r in recs1:
        r.cpu = 1
    mixed = [r for pair in zip(recs0, recs1) for r in pair]
    path = str(tmp_path / "multi.k42")
    save_records(path, mixed)
    loaded = load_records(path)
    trace = TraceReader(registry=default_registry()).decode_records(loaded)
    assert trace.ncpus == 2
