"""Streaming the trace over a network connection (§1).

"This event log may be examined while the system is running, written
out to disk, or streamed over the network."  The frame format works
over any byte stream; this test pushes live buffers through a real
socket pair while logging continues, and the receiving side decodes the
identical stream.
"""

import socket
import threading


from repro.core.buffers import TraceControl
from repro.core.logger import TraceLogger
from repro.core.majors import Major
from repro.core.mask import TraceMask
from repro.core.registry import default_registry
from repro.core.stream import TraceReader
from repro.core.timestamps import WallClock
from repro.core.writer import TraceFileReader, TraceFileWriter


def test_stream_trace_over_socket():
    left, right = socket.socketpair()
    control = TraceControl(buffer_words=64, num_buffers=8)
    mask = TraceMask()
    mask.enable_all()
    logger = TraceLogger(control, mask, WallClock(),
                         registry=default_registry())
    logger.start()

    received = {}

    def receiver():
        with right.makefile("rb") as fh:
            reader = TraceFileReader(fh)
            records = []
            try:
                while True:
                    records.append(reader._read_one())
            except (EOFError, ValueError):
                pass
            received["records"] = records

    rx = threading.Thread(target=receiver)
    rx.start()

    # The "system" logs while the writer drains buffers over the wire.
    with left.makefile("wb") as fh:
        writer = TraceFileWriter(fh, control.buffer_words)
        for i in range(800):
            logger.log1(Major.TEST, 1, i)
            if i % 100 == 99:
                for rec in control.drain():
                    writer.write_record(rec)
                fh.flush()
        for rec in control.flush():
            writer.write_record(rec)
        fh.flush()
    left.close()
    rx.join(timeout=10)
    right.close()

    assert "records" in received
    trace = TraceReader(registry=default_registry()).decode_records(
        received["records"]
    )
    values = [e.data[0] for e in trace.events(0) if e.major == Major.TEST]
    assert values == list(range(800))
    assert not trace.anomalies


def test_streamed_while_logging_continues():
    """Drain mid-run: earlier buffers ship while later events are still
    being produced (the examined-while-running property)."""
    control = TraceControl(buffer_words=64, num_buffers=8)
    mask = TraceMask()
    mask.enable_all()
    logger = TraceLogger(control, mask, WallClock(),
                         registry=default_registry())
    logger.start()
    shipped = []
    for i in range(1_000):
        logger.log1(Major.TEST, 1, i)
        if i % 200 == 199:
            shipped.extend(control.drain())
    shipped.extend(control.flush())
    trace = TraceReader(registry=default_registry()).decode_records(shipped)
    values = [e.data[0] for e in trace.events(0) if e.major == Major.TEST]
    assert values == list(range(1_000))
