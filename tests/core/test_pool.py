"""Unit tests for the shared persistent worker pool.

The pool is process-wide state, so every test that creates one tears
it down again — both to isolate the cases from each other and because
leaked workers are exactly what the pool-hygiene CI leg hunts for.
"""

import os
import warnings

import pytest

from repro.core import pool


@pytest.fixture(autouse=True)
def _fresh_pool():
    pool.shutdown()
    yield
    pool.shutdown()


class TestPoolWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_WORKERS", "3")
        assert pool.pool_workers(7) == 7

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_WORKERS", "3")
        assert pool.pool_workers(None) == 3
        assert pool.pool_workers(0) == 3

    def test_cpu_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL_WORKERS", raising=False)
        assert pool.pool_workers(None) == (os.cpu_count() or 1)

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_WORKERS", "banana")
        assert pool.pool_workers(None) == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_POOL_WORKERS", "-2")
        assert pool.pool_workers(None) == (os.cpu_count() or 1)


class TestGetPool:
    def test_lazy_and_reused(self):
        assert pool.pool_kind() is None and pool.pool_size() == 0
        p1 = pool.get_pool(2)
        assert p1 is not None
        assert pool.pool_size() >= 2
        assert pool.get_pool(2) is p1, "same ask must reuse the pool"
        assert pool.get_pool(1) is p1, "smaller ask must reuse the pool"

    def test_grows_on_wider_ask(self):
        p1 = pool.get_pool(1)
        assert p1 is not None and pool.pool_size() == 1
        p2 = pool.get_pool(3)
        assert p2 is not None and pool.pool_size() == 3
        assert p2 is not p1, "wider ask rebuilds the pool"

    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_START_METHOD", "none")
        assert pool.get_pool(2) is None
        assert pool.pool_kind() is None

    def test_kind_switch_rebuilds(self, monkeypatch):
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        if "fork" not in methods or "spawn" not in methods:
            pytest.skip("needs both fork and spawn")
        monkeypatch.setenv("REPRO_POOL_START_METHOD", "fork")
        p1 = pool.get_pool(1)
        assert pool.pool_kind() == "fork"
        monkeypatch.setenv("REPRO_POOL_START_METHOD", "spawn")
        p2 = pool.get_pool(1)
        assert pool.pool_kind() == "spawn"
        assert p2 is not p1

    def test_shutdown_idempotent(self):
        pool.get_pool(1)
        pool.shutdown()
        assert pool.pool_kind() is None and pool.pool_size() == 0
        pool.shutdown()  # second call is a no-op
        assert pool.get_pool(1) is not None, "usable again after shutdown"


class TestRunTasks:
    def test_empty(self):
        assert pool.run_tasks(pool._ping, [], workers=4) == []
        assert pool.pool_kind() is None, "empty batch must not build a pool"

    def test_single_item_inline(self):
        assert pool.run_tasks(pool._ping, [41], workers=4) == [41]
        assert pool.pool_kind() is None, \
            "a single task must run inline, not build a pool"

    def test_workers_one_inline(self):
        got = pool.run_tasks(pool._ping, list(range(5)), workers=1)
        assert got == list(range(5))
        assert pool.pool_kind() is None

    def test_order_preserved_on_pool(self):
        items = list(range(23))
        assert pool.run_tasks(pool._ping, items, workers=3) == items
        assert pool.pool_kind() is not None

    def test_disabled_pool_runs_inline(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_START_METHOD", "none")
        items = list(range(7))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert pool.run_tasks(pool._ping, items, workers=4) == items

    def test_broken_pool_retries_inline(self):
        p = pool.get_pool(2)
        assert p is not None
        p.submit(pool._ping, 0).result()  # force workers to start
        # Kill the workers behind the executor's back, then submit.
        for proc in list(p._processes.values()):
            proc.terminate()
            proc.join()
        with pytest.warns(RuntimeWarning, match="retrying the batch"):
            got = pool.run_tasks(pool._ping, list(range(6)), workers=2)
        assert got == list(range(6))
        assert pool.get_pool(2) is not None, "pool rebuilds after a death"


class TestForget:
    def test_forget_drops_reference_only(self):
        p = pool.get_pool(2)
        assert p is not None
        pool._forget()
        assert pool.pool_kind() is None and pool.pool_size() == 0
        # The old executor still works — _forget must not shut it down
        # (in a real fork it belongs to the parent).
        assert p.submit(pool._ping, 5).result() == 5
        p.shutdown()
