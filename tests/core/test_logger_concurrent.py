"""Concurrent stress tests: real threads hammering the lockless logger.

These exercise the actual race the CAS protects against (Figure 1): many
writers reserving into one per-CPU buffer simultaneously.  In K42 that
situation arises from multiple threads on one CPU plus interrupt-level
logging; here threads stand in for the interleaving.
"""

import threading

from repro.core.buffers import TraceControl
from repro.core.logger import TraceLogger
from repro.core.majors import Major
from repro.core.mask import TraceMask
from repro.core.registry import default_registry
from repro.core.stream import TraceReader
from repro.core.timestamps import WallClock


def run_threads(n_threads, per_thread, data_words=2, buffer_words=512,
                num_buffers=32, mode="writeout"):
    # NOTE: the default ring (512*32 words) exceeds the words these tests
    # log, so no position is ever recycled and the §3.1 straggler-garble
    # case (a writer descheduled across a full ring lap) cannot occur.
    # That case is exercised deliberately in
    # tests/core/test_logger.py::TestStragglerGarble.
    control = TraceControl(
        buffer_words=buffer_words, num_buffers=num_buffers, mode=mode,
        max_pending=None,
    )
    mask = TraceMask()
    mask.enable_all()
    clock = WallClock()
    logger = TraceLogger(control, mask, clock, registry=default_registry())
    logger.start()
    barrier = threading.Barrier(n_threads)

    def work(tid):
        barrier.wait()
        for i in range(per_thread):
            logger.log_words(Major.TEST, 1, [tid] + [i] * (data_words - 1))

    threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return logger, control


class TestConcurrentLogging:
    def test_no_events_lost(self):
        n_threads, per_thread = 8, 400
        logger, control = run_threads(n_threads, per_thread)
        reader = TraceReader(registry=default_registry())
        trace = reader.decode_records(control.flush())
        test_events = [e for e in trace.events(0) if e.major == Major.TEST]
        assert len(test_events) == n_threads * per_thread
        garbled = [a for a in trace.anomalies if a.kind == "garbled"]
        assert garbled == []

    def test_per_thread_event_counts_exact(self):
        n_threads, per_thread = 6, 300
        logger, control = run_threads(n_threads, per_thread)
        reader = TraceReader(registry=default_registry())
        trace = reader.decode_records(control.flush())
        counts = {}
        for e in trace.events(0):
            if e.major == Major.TEST:
                counts[e.data[0]] = counts.get(e.data[0], 0) + 1
        assert counts == {tid: per_thread for tid in range(n_threads)}

    def test_timestamps_monotonic_under_contention(self):
        """§3.1's guarantee: re-reading the timestamp inside the CAS retry
        loop keeps the per-CPU stream monotonic even under racing."""
        logger, control = run_threads(8, 300)
        reader = TraceReader(registry=default_registry(), include_fillers=True)
        trace = reader.decode_records(control.flush())
        times = [e.time for e in trace.events(0)]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_committed_counts_match_buffers(self):
        logger, control = run_threads(8, 500)
        reader = TraceReader(registry=default_registry())
        trace = reader.decode_records(control.flush())
        mismatches = [a for a in trace.anomalies if a.kind == "committed-mismatch"]
        assert mismatches == []

    def test_variable_lengths_under_contention(self):
        control = TraceControl(buffer_words=128, num_buffers=64)
        mask = TraceMask()
        mask.enable_all()
        logger = TraceLogger(control, mask, WallClock(), registry=default_registry())
        logger.start()
        n_threads = 6
        barrier = threading.Barrier(n_threads)

        def work(tid):
            barrier.wait()
            for i in range(200):
                n = (tid + i) % 5
                logger.log_words(Major.TEST, 1, [tid] * (n + 1))

        threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reader = TraceReader(registry=default_registry())
        trace = reader.decode_records(control.flush())
        evs = [e for e in trace.events(0) if e.major == Major.TEST]
        assert len(evs) == n_threads * 200
        assert not [a for a in trace.anomalies if a.kind == "garbled"]

    def test_cas_retries_happen_under_contention(self):
        """With 8 threads racing one index, some CAS attempts must fail —
        otherwise the test isn't exercising the lockless path at all.
        A tiny GIL switch interval forces real interleaving."""
        import sys

        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            retries = 0
            for _ in range(5):  # probabilistic: allow a few attempts
                logger, control = run_threads(8, 800)
                retries += control.stats_cas_retries
                if retries:
                    break
            assert retries > 0
        finally:
            sys.setswitchinterval(old)

    def test_flight_recorder_under_contention(self):
        # The ring wraps many times here, so a straggler *may* garble a
        # recycled buffer (§3.1) — the requirement is that the snapshot
        # still decodes and contains the most recent events.
        logger, control = run_threads(
            4, 500, buffer_words=128, num_buffers=4, mode="flight"
        )
        reader = TraceReader(registry=default_registry())
        trace = reader.decode_records(control.snapshot())
        evs = [e for e in trace.events(0) if e.major == Major.TEST]
        assert len(evs) > 0


class TestMultiCpuConcurrent:
    def test_per_cpu_buffers_are_independent(self):
        """One thread per CPU logging into its own control: zero CAS
        retries — the scalability property per-processor buffers buy."""
        ncpus = 4
        controls = [TraceControl(cpu=c, buffer_words=256, num_buffers=8)
                    for c in range(ncpus)]
        mask = TraceMask()
        mask.enable_all()
        clock = WallClock()
        loggers = [TraceLogger(c, mask, clock, registry=default_registry())
                   for c in controls]
        for lg in loggers:
            lg.start()
        barrier = threading.Barrier(ncpus)

        def work(cpu):
            barrier.wait()
            for i in range(1000):
                loggers[cpu].log1(Major.TEST, 1, i)

        threads = [threading.Thread(target=work, args=(c,)) for c in range(ncpus)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for c in controls:
            assert c.stats_cas_retries == 0
        records = []
        for c in controls:
            records.extend(c.flush())
        reader = TraceReader(registry=default_registry())
        trace = reader.decode_records(records)
        assert trace.ncpus == ncpus
        for cpu in range(ncpus):
            evs = [e for e in trace.events(cpu) if e.major == Major.TEST]
            assert len(evs) == 1000

    def test_merged_stream_ordered_across_cpus(self):
        ncpus = 3
        controls = [TraceControl(cpu=c, buffer_words=256, num_buffers=8)
                    for c in range(ncpus)]
        mask = TraceMask()
        mask.enable_all()
        clock = WallClock()
        loggers = [TraceLogger(c, mask, clock, registry=default_registry())
                   for c in controls]
        for lg in loggers:
            lg.start()

        def work(cpu):
            for i in range(500):
                loggers[cpu].log1(Major.TEST, 1, i)

        threads = [threading.Thread(target=work, args=(c,)) for c in range(ncpus)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = []
        for c in controls:
            records.extend(c.flush())
        trace = TraceReader(registry=default_registry()).decode_records(records)
        merged = trace.all_events()
        times = [e.time for e in merged]
        assert all(a <= b for a, b in zip(times, times[1:]))
