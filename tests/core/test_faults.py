"""Fault-matrix fuzz tests: every injected corruption must be survived.

The contract: for each fault kind in :mod:`repro.core.faults`, decoding
(or file/dump reading) never raises — the damage surfaces as a typed
anomaly, issue, or dump issue — and with recovery enabled a mid-buffer
garble costs strictly fewer events than strict stop-at-first-garble
decoding would discard.  Clean traces stay bit-identical across scalar,
batched, and parallel paths with recovery on or off.

Seeds come from ``FAULT_FUZZ_SEEDS`` (comma-separated, default
``0,1,2``) so CI can sweep fresh seeds every run while local failures
stay reproducible.
"""

import io
import os

import numpy as np
import pytest

from repro.core.crashdump import read_dump
from repro.core.faults import (
    ALL_KINDS,
    DUMP_KINDS,
    FILE_KINDS,
    RECORD_KINDS,
    FaultInjector,
)
from repro.core.stream import TraceReader, scan_buffer
from repro.core.writer import TraceFileReader, save_records
from tests.core.test_parallel import (
    as_comparable,
    assert_all_paths_identical,
    build_records,
)

SEEDS = [int(s) for s in
         os.environ.get("FAULT_FUZZ_SEEDS", "0,1,2").split(",")]


def _rerun(seed, keyword):
    """One-line command that reproduces a failing seed locally."""
    return (f"re-run: FAULT_FUZZ_SEEDS={seed} PYTHONPATH=src "
            f"python -m pytest tests/core/test_faults.py -k {keyword}")


@pytest.fixture(scope="module")
def records():
    return build_records(n_events=500, ncpus=2)


def trace_bytes(records):
    buf = io.BytesIO()
    save_records(buf, records)
    return buf.getvalue()


def dump_image():
    from repro.core.crashdump import dump_bytes
    from repro.core.facility import TraceFacility
    from repro.core.majors import Major
    from repro.core.timestamps import ManualClock

    fac = TraceFacility(ncpus=2, buffer_words=64, num_buffers=4,
                        mode="flight", clock=ManualClock())
    fac.enable_all()
    for i in range(200):
        fac.clock.advance(3)
        fac.log(i % 2, Major.TEST, 1, (i,))
    return dump_bytes(fac.controls)


class TestCleanEquivalence:
    """Recovery must be invisible on undamaged traces."""

    @pytest.mark.parametrize("strict", [False, True])
    def test_clean_trace_identical_across_paths(self, records, strict):
        trace = assert_all_paths_identical(records, strict=strict)
        assert trace.anomalies == []

    def test_recovery_mode_does_not_change_clean_output(self, records):
        loose = TraceReader(strict=False).decode_records(records)
        strict = TraceReader(strict=True).decode_records(records)
        assert as_comparable(loose) == as_comparable(strict)


class TestRecordFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", RECORD_KINDS)
    def test_fault_yields_anomaly_never_raises(self, records, kind, seed):
        why = _rerun(seed, "fault_yields_anomaly")
        damaged, report = FaultInjector(seed).inject_records(records, kind)
        assert report.detectable, f"{report.describe()}\n{why}"
        trace = TraceReader().decode_records(damaged)
        assert trace.anomalies, (
            f"{kind} injected (seed {seed}) but decode saw no anomaly: "
            f"{report.describe()}\n{why}")
        # Damage decodes identically on every path, strict or not.
        try:
            assert_all_paths_identical(damaged)
            assert_all_paths_identical(damaged, strict=True)
        except AssertionError as exc:
            raise AssertionError(
                f"reader paths diverged on {kind} (seed {seed})\n{why}"
            ) from exc

    @pytest.mark.parametrize("seed", SEEDS)
    def test_recovery_salvages_strictly_more(self, records, seed):
        """Acceptance: an injected mid-buffer garble costs strict mode
        more events than recovering mode."""
        damaged = [
            type(r)(cpu=r.cpu, seq=r.seq,
                    words=np.array(r.words, dtype=np.uint64),
                    committed=r.committed, fill_words=r.fill_words,
                    partial=r.partial)
            for r in records
        ]
        # Zero a mid-buffer header in a dense buffer: a guaranteed
        # garble with real events after it to salvage.
        rec = max(damaged, key=lambda r: r.fill_words)
        offsets = scan_buffer(rec.words, rec.fill_words).offsets
        assert len(offsets) > 4
        rec.words[offsets[len(offsets) // 2]] = np.uint64(0)

        loose = TraceReader(strict=False).decode_records(damaged)
        strict = TraceReader(strict=True).decode_records(damaged)
        why = _rerun(seed, "recovery_salvages")
        n_loose = sum(len(v) for v in loose.events_by_cpu.values())
        n_strict = sum(len(v) for v in strict.events_by_cpu.values())
        assert n_loose > n_strict, (
            f"recovery salvaged nothing: {n_loose} vs {n_strict} events "
            f"(seed {seed})\n{why}")
        kinds = [a.kind for a in loose.anomalies]
        assert "garbled" in kinds and "recovered-region" in kinds, \
            f"anomalies {kinds} (seed {seed})\n{why}"
        assert "recovered-region" not in [a.kind for a in strict.anomalies]

    @pytest.mark.parametrize("kind", RECORD_KINDS)
    def test_deterministic(self, records, kind):
        a, rep_a = FaultInjector(42).inject_records(records, kind)
        b, rep_b = FaultInjector(42).inject_records(records, kind)
        assert rep_a == rep_b
        for ra, rb in zip(a, b):
            assert ra.committed == rb.committed
            assert np.array_equal(ra.words, rb.words)


class TestFileFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", FILE_KINDS)
    def test_fault_reported_never_raises(self, records, kind, seed):
        why = _rerun(seed, "TestFileFaults")
        data, report = FaultInjector(seed).inject_trace_bytes(
            trace_bytes(records), kind)
        reader = TraceFileReader(io.BytesIO(data))
        loaded = reader.read_all()   # must not raise
        # The damage must be *noticed*.  A mid-frame truncation that
        # leaves a well-formed header prefix is byte-identical to an
        # in-progress write, so it surfaces as the "growing" tail
        # verdict rather than an issue; every other shape is an issue.
        assert reader.issues or reader.tail_state == "growing", \
            f"{report.describe()}\n{why}"
        if kind == "frame-magic":
            assert reader.issues, f"{report.describe()}\n{why}"
        assert loaded, \
            f"damage must not take the whole file with it (seed {seed})\n{why}"
        with pytest.raises((ValueError, EOFError)):
            TraceFileReader(io.BytesIO(data), strict=True).read_all()


class TestDumpFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", DUMP_KINDS)
    def test_fault_reported_never_raises(self, kind, seed):
        data, report = FaultInjector(seed).inject_dump_bytes(
            dump_image(), kind)
        dump = read_dump(data)   # must not raise
        assert dump.issues, (
            f"{report.describe()}\n{_rerun(seed, 'TestDumpFaults')}")


class TestInjectorApi:
    def test_unknown_kinds_rejected(self, records):
        inj = FaultInjector(0)
        with pytest.raises(ValueError):
            inj.inject_records(records, "frame-magic")
        with pytest.raises(ValueError):
            inj.inject_trace_bytes(trace_bytes(records), "torn-event")
        with pytest.raises(ValueError):
            inj.inject_dump_bytes(dump_image(), "header-bitflip")

    def test_originals_untouched(self, records):
        before = [np.array(r.words, dtype=np.uint64) for r in records]
        committed = [r.committed for r in records]
        for kind in RECORD_KINDS:
            FaultInjector(3).inject_records(records, kind)
        for r, w, c in zip(records, before, committed):
            assert np.array_equal(r.words, w)
            assert r.committed == c

    def test_kind_lists_are_disjoint_and_complete(self):
        assert set(RECORD_KINDS) | set(FILE_KINDS) | set(DUMP_KINDS) \
            == set(ALL_KINDS)
        assert len(ALL_KINDS) == len(set(ALL_KINDS))
