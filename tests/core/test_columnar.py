"""Structure-of-arrays event batches: the columnar analytics layer.

Contract under test (the decode-equivalence contract of the columnar
reader): every view the columnar layer offers — ``EventBatch`` columns,
vectorized payload decoding via compiled layout plans, the merged
``ColumnarTrace`` — must be bit-identical to what the scalar reference
reader produces for the same input, on clean and on damaged streams.
"""

import random

import numpy as np

from repro.core.columnar import (
    ColumnarTrace,
    ColumnarTraceReader,
    EventBatch,
    as_batch,
    decode_records_columnar,
)
from repro.core.packing import pack_values, parse_layout, unpack_values
from repro.core.registry import default_registry
from repro.core.stream import TraceEvent, TraceReader
from repro.core.writer import load_records, save_records
from tests.core.test_parallel import as_comparable, build_records


def _decode_both(records, **kw):
    reg = default_registry()
    scalar = TraceReader(registry=reg, **kw).decode_records(records)
    columnar = ColumnarTraceReader(registry=reg, **kw).decode_records(records)
    return scalar, columnar


def _event_tuple(e):
    return (e.cpu, e.seq, e.offset, e.ts32, e.major, e.minor,
            tuple(e.data), e.time, e.spec.name if e.spec else None)


def _corrupt(records, seed=7, rate=0.4):
    rng = random.Random(seed)
    for rec in records:
        if rng.random() < rate and rec.fill_words > 1:
            rec.words[rng.randrange(1, rec.fill_words)] = \
                np.uint64(rng.getrandbits(64))
    return records


class TestEventBatch:
    def test_from_events_materializes_back_exactly(self):
        trace = TraceReader(registry=default_registry()).decode_records(
            build_records())
        events = trace.all_events()
        b = EventBatch.from_events(events, default_registry())
        assert len(b) == len(events)
        got = b.events()
        assert list(map(_event_tuple, got)) == list(map(_event_tuple, events))

    def test_concat_rebases_payload_offsets(self):
        trace = TraceReader(registry=default_registry()).decode_records(
            build_records())
        events = trace.all_events()
        reg = default_registry()
        cut1, cut2 = len(events) // 3, 2 * len(events) // 3
        parts = [EventBatch.from_events(chunk, reg)
                 for chunk in (events[:cut1], events[cut1:cut2],
                               events[cut2:], [])]
        whole = EventBatch.concat(parts)
        assert list(map(_event_tuple, whole.events())) == \
            list(map(_event_tuple, events))

    def test_select_shares_word_pool(self):
        b = as_batch(TraceReader(registry=default_registry())
                     .decode_records(build_records()))
        m = b.dlen >= 1
        sub = b.select(m)
        assert sub.words is b.words
        assert len(sub) == int(m.sum())
        assert list(map(_event_tuple, sub.events())) == \
            list(map(_event_tuple, b.events(np.flatnonzero(m))))

    def test_mask_names_matches_scalar_name_check(self):
        trace = TraceReader(registry=default_registry()).decode_records(
            build_records())
        b = as_batch(trace)
        events = trace.all_events()
        names = {events[0].name, events[-1].name}
        m = b.mask_names(names)
        assert m.tolist() == [e.name in names for e in events]
        assert not b.mask_names({"TRC_NO_SUCH_EVENT"}).any()

    def test_data_column_is_clipped_not_out_of_bounds(self):
        b = as_batch(TraceReader(registry=default_registry())
                     .decode_records(build_records()))
        # Ask for a payload word far beyond any event's dlen: the gather
        # must stay in-pool (garbage value, but no IndexError) exactly
        # so callers can mask on dlen afterwards.
        col = b.data_column(63)
        assert len(col) == len(b)

    def test_order_by_time_matches_all_events_order(self):
        trace = TraceReader(registry=default_registry()).decode_records(
            build_records())
        b = EventBatch.from_events(trace.events_by_cpu[0]
                                   + trace.events_by_cpu[1],
                                   default_registry())
        merged = b.select(b.order_by_time()).events()
        expect = sorted(trace.events_by_cpu[0] + trace.events_by_cpu[1],
                        key=lambda e: (e.time if e.time is not None else -1,
                                       e.cpu, e.seq, e.offset))
        assert list(map(_event_tuple, merged)) == \
            list(map(_event_tuple, expect))

    def test_empty_batch(self):
        b = EventBatch.empty(default_registry())
        assert len(b) == 0
        assert b.events() == []
        assert not b.mask(major=3).any()

    def test_arrays_roundtrip_is_bit_identical(self):
        trace = TraceReader(registry=default_registry()).decode_records(
            build_records())
        b = as_batch(trace)
        again = EventBatch.from_arrays(b.to_arrays(), default_registry())
        assert list(map(_event_tuple, again.events())) == \
            list(map(_event_tuple, b.events()))
        # The compacted pool holds exactly the referenced payload words.
        assert len(again.words) == int(b.dlen.sum())

    def test_arrays_roundtrip_on_corrupt_trace(self):
        scalar, columnar = _decode_both(_corrupt(build_records()))
        b = as_batch(columnar)
        again = EventBatch.from_arrays(b.to_arrays(), default_registry())
        assert list(map(_event_tuple, again.events())) == \
            list(map(_event_tuple, b.events()))

    def test_arrays_roundtrip_object_dtype_time(self):
        # A corrupt anchor can reconstruct times beyond int64; the time
        # column falls back to object dtype and the codec must carry the
        # exact values through a string-typed time_big array.
        trace = TraceReader(registry=default_registry()).decode_records(
            build_records(n_events=40, ncpus=1))
        events = trace.all_events()
        events[3].time = 2 ** 70 + 12345
        b = EventBatch.from_events(events, default_registry())
        assert b.time.dtype == object
        arrays = b.to_arrays()
        assert "time_big" in arrays and "time" not in arrays
        again = EventBatch.from_arrays(arrays, default_registry())
        assert again.time.dtype == object
        assert again.time.tolist() == b.time.tolist()
        assert list(map(_event_tuple, again.events())) == \
            list(map(_event_tuple, b.events()))

    def test_arrays_roundtrip_empty_and_single(self):
        empty = EventBatch.empty(default_registry())
        again = EventBatch.from_arrays(empty.to_arrays(), default_registry())
        assert len(again) == 0 and again.events() == []

        trace = TraceReader(registry=default_registry()).decode_records(
            build_records(n_events=40, ncpus=1))
        one = as_batch(trace).select(np.array([5]))
        again = EventBatch.from_arrays(one.to_arrays(), default_registry())
        assert list(map(_event_tuple, again.events())) == \
            list(map(_event_tuple, one.events()))

    def test_arrays_survive_npz(self, tmp_path):
        # The store shard format: savez with allow_pickle=False.
        trace = TraceReader(registry=default_registry()).decode_records(
            build_records())
        b = as_batch(trace)
        path = tmp_path / "shard.npz"
        np.savez_compressed(path, **b.to_arrays())
        with np.load(path, allow_pickle=False) as npz:
            again = EventBatch.from_arrays(dict(npz), default_registry())
        assert list(map(_event_tuple, again.events())) == \
            list(map(_event_tuple, b.events()))


class TestFieldColumns:
    def test_every_vectorizable_registry_layout(self):
        """The compiled plan decodes exactly like ``unpack_values`` for
        every fixed layout in the default registry."""
        reg = default_registry()
        rng = random.Random(0)
        checked = 0
        for spec in reg:
            plan = spec.plan
            if not plan.vectorizable or not plan.fields:
                continue
            tokens = parse_layout(spec.layout)
            events = []
            expected = []
            for i in range(4):
                values = [rng.randrange(1 << int(tok)) for tok in tokens]
                data = pack_values(spec.layout, values)
                events.append(TraceEvent(0, 0, i * 8, 0, spec.major,
                                         spec.minor, data, time=i,
                                         spec=spec))
                expected.append(unpack_values(spec.layout, data))
            b = EventBatch.from_events(events, reg)
            cols = b.field_columns(spec)
            assert cols is not None and len(cols) == len(tokens)
            for row in range(len(events)):
                got = [int(c[row]) for c in cols]
                assert got == expected[row], spec.name
            checked += 1
        assert checked > 10  # the registry is full of fixed layouts

    def test_str_layout_is_not_vectorizable(self):
        reg = default_registry()
        specs = [s for s in reg if "str" in parse_layout(s.layout)]
        assert specs, "registry should contain str layouts"
        b = EventBatch.empty(reg)
        for spec in specs:
            assert b.field_columns(spec) is None


class TestColumnarTrace:
    def test_clean_decode_identical_to_scalar(self):
        records = build_records()
        scalar, columnar = _decode_both(records)
        assert isinstance(columnar, ColumnarTrace)
        assert as_comparable(columnar) == as_comparable(scalar)
        assert columnar.anomalies == scalar.anomalies == []

    def test_corrupt_decode_identical_including_anomaly_order(self):
        records = _corrupt(build_records())
        for strict in (False, True):
            scalar, columnar = _decode_both(records, strict=strict)
            assert as_comparable(columnar) == as_comparable(scalar)
            assert columnar.anomalies == scalar.anomalies
            assert columnar.anomalies  # corruption must be visible

    def test_include_fillers(self):
        records = build_records()
        scalar, columnar = _decode_both(records, include_fillers=True)
        assert as_comparable(columnar) == as_comparable(scalar)

    def test_all_events_returns_same_objects_each_call(self):
        # Tools key state by event identity (e.g. ContextTracker uses
        # id(e)); repeated traversals must hand out the same objects.
        _, columnar = _decode_both(build_records())
        a = columnar.all_events()
        b = columnar.all_events()
        assert all(x is y for x, y in zip(a, b))
        ebc = columnar.events_by_cpu
        assert all(e in {id(x) for x in a}
                   for e in map(id, ebc[0]))

    def test_filter_matches_scalar(self):
        records = build_records()
        scalar, columnar = _decode_both(records)
        for kw in (dict(major=3), dict(major=3, minor=2),
                   dict(include_control=True),
                   dict(name=scalar.all_events()[0].name)):
            assert list(map(_event_tuple, columnar.filter(**kw))) == \
                list(map(_event_tuple, scalar.filter(**kw))), kw

    def test_batch_is_time_ordered(self):
        _, columnar = _decode_both(build_records())
        b = columnar.batch()
        assert list(map(_event_tuple, b.events())) == \
            list(map(_event_tuple, columnar.all_events()))

    def test_to_trace(self):
        records = build_records()
        scalar, columnar = _decode_both(records)
        assert as_comparable(columnar.to_trace()) == as_comparable(scalar)

    def test_decode_file(self, tmp_path):
        records = build_records()
        path = str(tmp_path / "t.k42")
        save_records(path, records, buffer_words=len(records[0].words))
        scalar = TraceReader(registry=default_registry()).decode_records(
            load_records(path))
        columnar = ColumnarTraceReader(
            registry=default_registry()).decode_file(path)
        assert as_comparable(columnar) == as_comparable(scalar)

    def test_empty_records(self):
        columnar = decode_records_columnar([], default_registry())
        assert columnar.all_events() == []
        assert len(columnar.batch()) == 0
        assert columnar.anomalies == []


class TestAsBatch:
    def test_as_batch_caches_on_trace(self):
        trace = TraceReader(registry=default_registry()).decode_records(
            build_records())
        assert as_batch(trace) is as_batch(trace)

    def test_as_batch_identity_forms(self):
        _, columnar = _decode_both(build_records())
        b = columnar.batch()
        assert as_batch(b) is b
        assert as_batch(columnar) is b


class TestIncrementalAssembly:
    """``take()`` + ``WindowedBatches``: the live follower's seam."""

    def test_take_interleaved_matches_one_shot(self):
        """Feeding buffers and draining chunks interleaved must decode
        bit-identically to one uninterrupted assemble-then-finish —
        the timestamp-stitching state survives each take()."""
        from repro.core.columnar import ColumnarAssembler, WindowedBatches
        from repro.core.stream import scan_buffer

        records = build_records(n_events=400, ncpus=2)
        reg = default_registry()

        one_shot = decode_records_columnar(records, registry=reg)

        asm = ColumnarAssembler(registry=reg)
        window = WindowedBatches(registry=reg)
        for i, rec in enumerate(records):
            asm.add_buffer(rec, scan_buffer(rec.words, rec.fill_words))
            if i % 3 == 2:          # drain mid-stream, repeatedly
                window.absorb(asm.take())
        window.absorb(asm.take())
        live = window.trace()

        a, b = one_shot.batch(), live.batch()
        assert len(a) == len(b)
        for col in ("cpu", "seq", "offset", "ts32", "major", "minor",
                    "length", "dlen", "timed"):
            assert np.array_equal(getattr(a, col), getattr(b, col)), col
        assert a.time.tolist() == b.time.tolist()
        assert [_event_tuple(e) for e in one_shot.all_events()] == \
            [_event_tuple(e) for e in live.all_events()]
        # Anomaly verdicts agree as a multiset (arrival order may
        # interleave CPUs differently than the post-mortem sweep).
        assert sorted((a2.cpu, a2.seq, a2.offset, a2.kind)
                      for a2 in one_shot.anomalies) == \
            sorted((a2.cpu, a2.seq, a2.offset, a2.kind)
                   for a2 in live.anomalies)

    def test_window_eviction_is_bounded_and_counted(self):
        from repro.core.columnar import ColumnarAssembler, WindowedBatches
        from repro.core.stream import scan_buffer

        records = build_records(n_events=600, ncpus=2)
        reg = default_registry()
        window = WindowedBatches(max_events=40, registry=reg)
        asm = ColumnarAssembler(registry=reg)
        fed = 0
        largest_chunk = 0
        for rec in records:
            asm.add_buffer(rec, scan_buffer(rec.words, rec.fill_words))
            chunk = asm.take()
            size = sum(len(b) for b in chunk.batches_by_cpu.values())
            fed += size
            largest_chunk = max(largest_chunk, size)
            window.absorb(chunk)
        assert window.evicted_events > 0
        assert window.total_events <= 40 + largest_chunk
        assert window.total_events + window.evicted_events == fed
        assert len(window.trace().batch()) == window.total_events

    def test_window_keeps_cpu_universe_after_eviction(self):
        """A CPU whose events were all evicted still contributes an
        empty lane — same as a post-mortem decode of an idle CPU."""
        from repro.core.columnar import ColumnarAssembler, WindowedBatches
        from repro.core.stream import scan_buffer

        records = build_records(n_events=300, ncpus=2)
        reg = default_registry()
        window = WindowedBatches(max_events=10, registry=reg)
        asm = ColumnarAssembler(registry=reg)
        # All of CPU 0 first, then all of CPU 1: CPU 0 evicts entirely.
        for rec in sorted(records, key=lambda r: (r.cpu, r.seq)):
            asm.add_buffer(rec, scan_buffer(rec.words, rec.fill_words))
            window.absorb(asm.take())
        trace = window.trace()
        assert trace.cpus == [0, 1]
        assert len(trace.cpu_batch(0)) == 0

    def test_window_rejects_nonsense_bound(self):
        import pytest

        from repro.core.columnar import WindowedBatches

        with pytest.raises(ValueError):
            WindowedBatches(max_events=0)
