"""Deterministic CAS-race injection on the lockless logger.

The threaded stress tests exercise races probabilistically; these tests
force the exact interleavings of Figure 1 using the simulator's atomic
word with an interference hook, making every branch of the retry loop
reachable on demand:

* a competitor CASes the index between our load and our CAS → retry;
* the timestamp is re-read on retry (Figure 2's guarantee);
* a competitor fills the buffer while we retry → slow path;
* the slow-path filler CAS itself loses → its caller retries.
"""


from repro.atomic import SimAtomicWord
from repro.core.buffers import TraceControl
from repro.core.logger import TraceLogger
from repro.core.majors import ControlMinor, Major
from repro.core.mask import TraceMask
from repro.core.registry import default_registry
from repro.core.stream import TraceReader
from repro.core.timestamps import ManualClock


def make(buffer_words=32, num_buffers=4):
    control = TraceControl(
        buffer_words=buffer_words, num_buffers=num_buffers,
        atomic_word_factory=SimAtomicWord,
    )
    mask = TraceMask()
    mask.enable_all()
    clock = ManualClock()
    logger = TraceLogger(control, mask, clock, registry=default_registry())
    logger.start()
    return logger, control, clock


def decode(control):
    return TraceReader(registry=default_registry()).decode_records(
        control.flush()
    )


def test_cas_failure_causes_retry_and_success():
    logger, control, clock = make()
    index: SimAtomicWord = control.index

    fired = []

    def competitor(word, expected, new):
        # Another "CPU-local competitor" reserves 2 words first —
        # once; the hook disarms itself so the retry succeeds.
        fired.append(True)
        word.store(expected + 2)
        index.set_hook(None)

    index.set_hook(competitor)
    clock.advance(10)
    assert logger.log1(Major.TEST, 1, 0xAA)
    index.set_hook(None)
    assert fired == [True]
    assert control.stats_cas_retries == 1
    # Both the competitor's hole and our event are in the buffer; the
    # hole decodes as garble (zero words within the fill region) but our
    # event must survive beyond it... the hole precedes us, so decoding
    # stops at it — the committed count flags the buffer instead.
    trace = decode(control)
    assert any(a.kind in ("garbled", "committed-mismatch")
               for a in trace.anomalies) or trace.anomalies == []


def test_timestamp_reread_on_retry():
    """Figure 2: the timestamp must be (re)determined on every attempt,
    otherwise a process that loses the CAS could log an earlier stamp
    into a later slot."""
    logger, control, clock = make()
    index: SimAtomicWord = control.index

    def competitor_with_delay(word, expected, new):
        # The competitor reserves AND writes its event; meanwhile the
        # clock moves on (we were descheduled mid-attempt).
        pos = expected & control.index_mask
        from repro.core.constants import TIMESTAMP_MASK
        from repro.core.header import pack_header

        ts = clock.now()
        control.array[pos] = pack_header(ts & TIMESTAMP_MASK, 2,
                                         Major.TEST, 2)
        control.array[pos + 1] = 0xC0FFEE
        control.committed.fetch_and_add(
            control.slot_of(control.buffer_of(expected)), 2
        )
        word.store(expected + 2)
        clock.advance(500)  # time passes before our retry
        index.set_hook(None)

    clock.advance(10)
    index.set_hook(competitor_with_delay)
    assert logger.log1(Major.TEST, 1, 0xAA)
    index.set_hook(None)
    trace = decode(control)
    assert not trace.anomalies
    evs = [e for e in trace.events(0) if e.major == Major.TEST]
    assert [e.data[0] for e in evs] == [0xC0FFEE, 0xAA]
    # Monotonic: our retried event re-read the clock after the delay.
    assert evs[1].time >= evs[0].time + 500


def test_competitor_fills_buffer_forcing_slow_path():
    """We attempt a fast-path reserve; before our CAS, a competitor
    consumes the rest of the buffer; our retry must take the filler/
    slow path and land in the next buffer."""
    logger, control, clock = make(buffer_words=32)
    index: SimAtomicWord = control.index

    def hog(word, expected, new):
        # Fill to one word before the boundary (leaving too little).
        used = expected & (control.buffer_words - 1)
        remaining = control.buffer_words - used
        word.store(expected + remaining - 1)
        index.set_hook(None)

    clock.advance(5)
    index.set_hook(hog)
    assert logger.log2(Major.TEST, 2, 1, 2)  # needs 3 words; 1 remains
    index.set_hook(None)
    assert control.stats_fillers >= 1
    trace = decode(control)
    evs = [e for e in trace.events(0) if e.major == Major.TEST]
    assert len(evs) == 1
    assert evs[0].seq == 1  # pushed into the next buffer


def test_slow_path_cas_loss_is_retried():
    """The filler CAS can lose too; the loser must re-evaluate."""
    logger, control, clock = make(buffer_words=32)
    # Manually advance the index near the boundary.
    control.index.store(30)
    control.booked_seq.store(0)
    index: SimAtomicWord = control.index
    calls = []

    def steal_slow_path(word, expected, new):
        calls.append((expected, new))
        if len(calls) == 1:
            # First CAS is the slow-path filler claim: make it lose by
            # having "someone else" write the filler and advance.
            from repro.core.constants import TIMESTAMP_MASK
            from repro.core.header import pack_header

            pos = expected & control.index_mask
            control.array[pos] = pack_header(
                clock.now() & TIMESTAMP_MASK, 2,
                Major.CONTROL, ControlMinor.FILLER,
            )
            control.committed.fetch_and_add(
                control.slot_of(control.buffer_of(expected)), 2
            )
            word.store(32)
            index.set_hook(None)

    clock.advance(5)
    index.set_hook(steal_slow_path)
    assert logger.log2(Major.TEST, 2, 7, 8)
    index.set_hook(None)
    assert control.stats_cas_retries >= 1
    assert control.index.load() >= 35  # landed in buffer 1


def test_interference_preserves_stream_integrity_over_many_events():
    """Sporadic interference across a long run: the final stream still
    contains every event we logged, in order."""
    logger, control, clock = make(buffer_words=64, num_buffers=8)
    index: SimAtomicWord = control.index
    state = {"n": 0}

    def sometimes(word, expected, new):
        state["n"] += 1
        if state["n"] % 7 == 0:
            word.store(expected + 2)  # 2-word competitor hole

    index.set_hook(sometimes)
    for i in range(200):
        clock.advance(3)
        logger.log1(Major.TEST, 1, i)
    index.set_hook(None)
    trace = decode(control)
    values = [e.data[0] for e in trace.events(0) if e.major == Major.TEST
              and len(e.data) == 1]
    # Each hole garbles the rest of its buffer (decoding resumes at the
    # next alignment boundary), so many events are sacrificed — but the
    # damage is *detected*, and every event that does decode is ours,
    # in order.  That is exactly the §3.1 detection-over-prevention deal.
    assert values == sorted(values)
    assert values, "some events must survive at buffer starts"
    assert any(a.kind in ("garbled", "committed-mismatch")
               for a in trace.anomalies)
