"""Exhaustive-mode proofs for small configurations.

These are the acceptance checks of the schedule explorer: for the
configurations below, *every* interleaving within the preemption bound
(and kill budget) must satisfy every protocol invariant.  A failure
here is a real protocol bug (or an invariant bug) — the assertion
message carries the minimized counterexample and the exact command to
reproduce it.
"""

import pytest

from repro.check import CheckConfig, explore_exhaustive, explore_random
from repro.check.script import ScheduleScript


def _explain(result, cmd: str) -> str:
    v = result.violation
    mini = result.counterexample
    lines = [
        f"violation: {v.invariant}: {v.detail}",
        f"minimized to {mini.steps} steps / {mini.preemptions} preemptions",
        f"reproduce with: {cmd}",
        "schedule script:",
        ScheduleScript.from_outcome(mini).to_json(),
    ]
    return "\n".join(lines)


class TestExhaustiveProofs:
    def test_acceptance_config_2w_2e_pb2(self):
        """The ISSUE's acceptance bar: 2 writers x 2 events, bound 2."""
        cfg = CheckConfig(writers=2, events=2)
        result = explore_exhaustive(cfg, preemption_bound=2)
        assert result.passed, _explain(
            result,
            "PYTHONPATH=src python -m repro.cli check "
            "--writers 2 --events 2 --preemption-bound 2",
        )
        assert not result.truncated
        # the space is non-trivial: hundreds of distinct interleavings
        assert result.schedules > 100

    def test_wider_buffer_pb2(self):
        cfg = CheckConfig(writers=2, events=2, buffer_words=16)
        result = explore_exhaustive(cfg, preemption_bound=2)
        assert result.passed, _explain(
            result,
            "PYTHONPATH=src python -m repro.cli check --writers 2 "
            "--events 2 --buffer-words 16 --preemption-bound 2",
        )

    def test_three_writers_pb1(self):
        cfg = CheckConfig(writers=3, events=1, num_buffers=8)
        result = explore_exhaustive(cfg, preemption_bound=1)
        assert result.passed, _explain(
            result,
            "PYTHONPATH=src python -m repro.cli check --writers 3 "
            "--events 1 --preemption-bound 1",
        )

    def test_kills_pb1(self):
        """Killed writers: torn buffers flagged, clean buffers not."""
        cfg = CheckConfig(writers=2, events=2, kills=1)
        result = explore_exhaustive(cfg, preemption_bound=1)
        assert result.passed, _explain(
            result,
            "PYTHONPATH=src python -m repro.cli check --writers 2 "
            "--events 2 --kills 1 --preemption-bound 1",
        )

    def test_concurrent_reader_pb1(self):
        """A reader sees only consistent data in committed-covered buffers."""
        cfg = CheckConfig(writers=2, events=2, reader=True, reader_steps=3)
        result = explore_exhaustive(cfg, preemption_bound=1)
        assert result.passed, _explain(
            result,
            "PYTHONPATH=src python -m repro.cli check --writers 2 "
            "--events 2 --reader --preemption-bound 1",
        )

    def test_max_schedules_reports_truncation(self):
        cfg = CheckConfig(writers=2, events=2)
        result = explore_exhaustive(cfg, preemption_bound=2, max_schedules=5)
        assert result.passed and result.truncated
        assert result.schedules == 5


class TestRandomMode:
    def test_random_clean_and_reproducible(self):
        cfg = CheckConfig(writers=2, events=2, kills=1, reader=True)
        a = explore_random(cfg, schedules=60, seed=13)
        b = explore_random(cfg, schedules=60, seed=13)
        assert a.passed, (
            f"violation: {a.violation} at seed 13 iteration {a.iteration}; "
            f"re-run: PYTHONPATH=src python -m repro.cli check "
            f"--mode random --writers 2 --events 2 --kills 1 --reader "
            f"--schedules 60 --seed 13"
        )
        assert a.steps == b.steps  # same seed, same schedules

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_seeds_pass(self, seed):
        cfg = CheckConfig(writers=2, events=1)
        result = explore_random(cfg, schedules=40, seed=seed)
        assert result.passed, (
            f"violation {result.violation} at seed {seed} iteration "
            f"{result.iteration}; re-run: PYTHONPATH=src python -m "
            f"repro.cli check --mode random --writers 2 --events 1 "
            f"--schedules 40 --seed {seed}"
        )
