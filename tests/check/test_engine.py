"""Unit tests for the model checker's execution machinery."""

import pytest

from repro.atomic import SteppedAtomicArray, SteppedAtomicWord
from repro.check.coop import CoopRuntime, DONE, KILLED, EngineError
from repro.check.harness import (
    CheckConfig,
    ConfigError,
    run_schedule,
)
from repro.check.instrument import DoubleWriteError, InstrumentedArray, Probe


class TestSteppedAtomics:
    def test_word_semantics(self):
        w = SteppedAtomicWord(5)
        assert w.load() == 5
        w.store(9)
        assert w.peek() == 9
        assert w.compare_and_store(9, 10)
        assert not w.compare_and_store(9, 11)
        assert w.fetch_and_add(2) == 10
        assert w.load() == 12

    def test_word_yields_before_effect(self):
        labels = []
        w = SteppedAtomicWord(0, yield_fn=labels.append, name="idx")
        w.load()
        w.compare_and_store(0, 1)
        w.store(7)
        w.fetch_and_add(1)
        assert labels == ["idx.load", "idx.cas", "idx.store", "idx.faa"]

    def test_word_observer_sees_outcome(self):
        seen = []
        w = SteppedAtomicWord(0, observer=lambda *a: seen.append(a))
        w.compare_and_store(0, 4)
        w.compare_and_store(0, 5)
        assert seen[0] == ("word", "cas", (0, 4), True)
        assert seen[1] == ("word", "cas", (0, 5), False)

    def test_array_semantics(self):
        a = SteppedAtomicArray(3)
        a.store(1, 42)
        assert a.load(1) == 42
        assert a.peek(0) == 0
        assert a.compare_and_store(1, 42, 43)
        assert a.fetch_and_add(1, 1) == 43
        assert a.snapshot() == [0, 44, 0]
        assert len(a) == 3


class TestCoopRuntime:
    def test_steps_are_deterministic(self):
        def trace_of():
            rt = CoopRuntime()
            log = []
            def worker(name):
                def fn():
                    for i in range(3):
                        rt.yield_point(f"{name}.{i}")
                        log.append((name, i))
                return fn
            a = rt.spawn("a", worker("a"))
            b = rt.spawn("b", worker("b"))
            # alternate strictly
            while rt.enabled():
                for t in (a, b):
                    if t.state == "ready":
                        rt.step(t)
            return log

        assert trace_of() == trace_of()

    def test_kill_skips_pending_operation(self):
        rt = CoopRuntime()
        executed = []
        def fn():
            rt.yield_point("op1")
            executed.append("op1")
            rt.yield_point("op2")
            executed.append("op2")
        t = rt.spawn("w", fn)
        rt.step(t)          # runs up to the op1 yield point
        rt.step(t)          # executes op1, parks at op2
        rt.kill(t)          # op2 must never execute
        assert t.state == KILLED
        assert executed == ["op1"]

    def test_completion_and_invalid_step(self):
        rt = CoopRuntime()
        t = rt.spawn("w", lambda: None)
        rt.step(t)
        assert t.state == DONE
        with pytest.raises(EngineError):
            rt.step(t)

    def test_yield_outside_task_is_noop(self):
        rt = CoopRuntime()
        rt.yield_point("setup")  # must not raise or block


class TestInstrumentedArray:
    def test_double_write_detected(self):
        rt = CoopRuntime()
        probe = Probe(rt, buffer_words=8)
        arr = InstrumentedArray(8, rt, probe)
        arr[3] = 1
        with pytest.raises(DoubleWriteError):
            arr[3] = 2

    def test_slice_zero_resets_ownership(self):
        rt = CoopRuntime()
        probe = Probe(rt, buffer_words=8)
        arr = InstrumentedArray(8, rt, probe)
        arr[2] = 7
        arr[0:4] = [0, 0, 0, 0]
        arr[2] = 8  # legal again after the zeroing
        assert arr[2] == 8


class TestConfigValidation:
    def test_rejects_wrapping_config(self):
        with pytest.raises(ConfigError):
            CheckConfig(writers=4, events=8, num_buffers=2).validate()

    def test_rejects_zero_payload(self):
        with pytest.raises(ConfigError):
            CheckConfig(data_words=0).validate()

    def test_runtime_wrap_guard(self):
        # Sneak past the static estimate with a config that wraps only
        # under an adversarial schedule shape: impossible here, so force
        # it by shrinking the ring after validation.
        cfg = CheckConfig(writers=2, events=2)
        cfg.num_buffers = 2  # 16 words total; the run needs ~20
        with pytest.raises(ConfigError, match="wrap"):
            run_schedule(cfg)

    def test_payloads_are_unique_and_nonzero(self):
        cfg = CheckConfig(writers=3, events=4, data_words=2)
        seen = set()
        for per_writer in cfg.payloads():
            for words in per_writer:
                assert all(w != 0 for w in words)
                key = tuple(words)
                assert key not in seen
                seen.add(key)


class TestRunSchedule:
    def test_default_schedule_is_clean_and_deterministic(self):
        cfg = CheckConfig(writers=2, events=2)
        a = run_schedule(cfg)
        b = run_schedule(cfg)
        assert a.violation is None
        assert a.choices == b.choices
        assert [p.labels for p in a.points] == [p.labels for p in b.points]

    def test_forced_prefix_is_respected(self):
        cfg = CheckConfig(writers=2, events=1)
        out = run_schedule(cfg, prefix=[("run", 1), ("run", 1), ("run", 0)])
        assert [p.choice for p in out.points[:3]] == [
            ("run", 1), ("run", 1), ("run", 0)]
        assert out.violation is None

    def test_kill_leaves_flagged_trace(self):
        # Kill writer 0 right before it writes its header: the torn
        # buffer must be flagged, which for the correct logger means
        # *no* violation is reported.
        cfg = CheckConfig(writers=2, events=1, kills=1)
        base = run_schedule(cfg)
        # find the first mem write of task 0 and kill there instead
        for i, point in enumerate(base.points):
            if point.labels.get(0, "").startswith("mem["):
                prefix = [p.choice for p in base.points[:i]] + [("kill", 0)]
                break
        else:
            pytest.fail("no mem write point found")
        out = run_schedule(cfg, prefix=prefix)
        assert out.violation is None, out.violation
        assert out.kills == 1

    def test_preemption_accounting(self):
        cfg = CheckConfig(writers=2, events=1)
        out = run_schedule(
            cfg, prefix=[("run", 0), ("run", 0), ("run", 1), ("run", 0)])
        # switching 0->1 while 0 is alive, then 1->0 while 1 is alive
        assert out.preemptions >= 2
