"""Schedule scripts: serialization, validation, and replay semantics."""

import json

import pytest

from repro.check import CheckConfig, load_script, run_schedule, save_script
from repro.check.harness import ReplayDivergence
from repro.check.script import FORMAT, ScheduleScript


def _sample_outcome():
    cfg = CheckConfig(writers=2, events=1)
    return run_schedule(cfg, prefix=[("run", 1), ("run", 0)])


class TestRoundTrip:
    def test_save_load_replay(self, tmp_path):
        outcome = _sample_outcome()
        script = ScheduleScript.from_outcome(outcome, note="unit test")
        path = tmp_path / "sched.json"
        save_script(script, str(path))
        loaded = load_script(str(path))
        assert loaded.config == script.config
        assert loaded.choices == script.choices
        assert loaded.note == "unit test"
        replayed = loaded.replay()
        assert replayed.choices == outcome.choices
        assert replayed.violation is None

    def test_json_shape(self, tmp_path):
        script = ScheduleScript.from_outcome(_sample_outcome())
        path = tmp_path / "sched.json"
        save_script(script, str(path))
        doc = json.loads(path.read_text())
        assert doc["format"] == FORMAT
        assert doc["config"]["writers"] == 2
        assert doc["choices"][0] == {"run": 1}

    def test_violation_recorded(self):
        from repro.check import explore_exhaustive

        cfg = CheckConfig(writers=2, events=1, mutant="non-atomic-reserve")
        result = explore_exhaustive(cfg, preemption_bound=1)
        assert not result.passed
        script = ScheduleScript.from_outcome(result.counterexample)
        doc = json.loads(script.to_json())
        assert doc["violation"]["invariant"] == "double-write"


class TestValidation:
    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="format"):
            load_script(str(path))

    def test_rejects_unknown_config_field(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "format": FORMAT,
            "config": {"writers": 2, "bogus": 1},
            "choices": [],
        }))
        with pytest.raises(ValueError, match="bogus"):
            load_script(str(path))

    @pytest.mark.parametrize("choice", [
        {"jump": 0}, {"run": -1}, {"run": 0, "kill": 1}, "run 0",
    ])
    def test_rejects_bad_choice(self, tmp_path, choice):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "format": FORMAT,
            "config": {},
            "choices": [choice],
        }))
        with pytest.raises(ValueError):
            load_script(str(path))


class TestReplayModes:
    def test_strict_replay_detects_divergence(self):
        # A script that asks for a task that is already done must fail
        # loudly in strict mode and fall back to policy otherwise.
        cfg = CheckConfig(writers=2, events=1)
        base = run_schedule(cfg)
        bogus = list(base.choices) + [("run", 0)] * 5
        script = ScheduleScript(config=cfg, choices=bogus)
        with pytest.raises(ReplayDivergence):
            script.replay(strict=True)
        lenient = script.replay(strict=False)
        assert lenient.violation is None
