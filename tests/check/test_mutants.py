"""The checker must catch every seeded logger mutant.

Each mutant reintroduces one specific race; the checker must find it,
shrink the failing schedule, blame an invariant from the mutant's
expected set, and produce a script that replays deterministically.
"""

import pytest

from repro.check import CheckConfig, explore_exhaustive
from repro.check.mutants import MUTANTS, make_logger
from repro.check.script import ScheduleScript
from repro.core.logger import TraceLogger


def _explore_mutant(name):
    spec = MUTANTS[name]
    overrides = dict(spec.config)
    bound = overrides.pop("preemption_bound", 2)
    cfg = CheckConfig(mutant=name, **overrides)
    return spec, explore_exhaustive(cfg, preemption_bound=bound)


@pytest.mark.parametrize("name", sorted(MUTANTS))
def test_mutant_is_caught(name):
    spec, result = _explore_mutant(name)
    assert not result.passed, (
        f"mutant {name!r} survived {result.schedules} schedules; "
        f"re-run: PYTHONPATH=src python -m repro.cli check --mutant {name}"
    )
    assert result.violation.invariant in spec.expected, (
        f"mutant {name!r} tripped {result.violation.invariant!r}, "
        f"expected one of {spec.expected}: {result.violation.detail}"
    )


@pytest.mark.parametrize("name", sorted(MUTANTS))
def test_mutant_counterexample_replays(name):
    _, result = _explore_mutant(name)
    mini = result.counterexample
    script = ScheduleScript.from_outcome(mini)
    first = script.replay()
    second = script.replay()
    assert first.violation is not None
    assert first.violation.invariant == result.violation.invariant
    # deterministic: identical choices, identical failure
    assert first.choices == second.choices
    assert first.violation.detail == second.violation.detail


def test_counterexamples_are_minimized():
    # The shrinker's fixpoint guarantee: neither truncating the forced
    # prefix nor deleting any single forced choice still reproduces the
    # failure (the rest of the schedule follows the default policy).
    from repro.check.harness import run_schedule

    def reproduces(cfg, prefix, invariant):
        out = run_schedule(cfg, prefix=prefix)
        return out.violation is not None and \
            out.violation.invariant == invariant

    for name in ("non-atomic-reserve", "reset-on-book"):
        _, result = _explore_mutant(name)
        mini = result.counterexample
        assert mini.steps <= result.original.steps
        invariant = result.violation.invariant
        prefix = mini.choices[:mini.forced]
        if prefix:
            assert not reproduces(mini.config, prefix[:-1], invariant), (
                f"mutant {name!r}: truncating the forced prefix still fails"
            )
        for i in range(len(prefix)):
            assert not reproduces(
                mini.config, prefix[:i] + prefix[i + 1:], invariant
            ), f"mutant {name!r}: forced choice {i} is removable"


def test_registry_and_factory():
    assert len(MUTANTS) >= 3  # the ISSUE asks for 2-3; we ship five
    cfg = CheckConfig()
    from repro.check.harness import CheckedSystem

    system = CheckedSystem(cfg)
    real = make_logger(None, system.ctl, system.mask, system.clock)
    assert type(real) is TraceLogger
    for name, spec in MUTANTS.items():
        mut = make_logger(name, system.ctl, system.mask, system.clock)
        assert isinstance(mut, TraceLogger)
        assert type(mut) is spec.cls
    with pytest.raises(KeyError):
        make_logger("no-such-mutant", system.ctl, system.mask, system.clock)


def test_reset_on_book_reproduces_the_fixed_seed_bug():
    """The reset-on-book mutant is this codebase's own former behavior:
    its counterexample documents the race the generation-tagged commit
    words fixed.  The failure must implicate the committed count."""
    spec, result = _explore_mutant("reset-on-book")
    assert not result.passed
    detail = result.violation.detail
    assert "committed" in detail
