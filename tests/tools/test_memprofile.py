"""Memory-profile tool tests (§2's hot-spot study)."""

import pytest

from repro.tools.memprofile import format_memory_report, memory_profile
from repro.workloads import run_memstress


@pytest.fixture(scope="module")
def memstress_run():
    kernel, facility, result = run_memstress(ncpus=2, bursts=8)
    return kernel, facility.decode(), result


def test_thrasher_identified_as_hotspot(memstress_run):
    kernel, trace, result = memstress_run
    report = memory_profile(trace, kernel.symbols().process_names)
    top = report.hottest(1)[0]
    assert top.pid == result.thrasher_pid
    assert top.name == "memhog"
    share = top.l2_misses / max(1, report.total_l2)
    assert share > 0.6, f"thrasher only got {share:.0%} of misses"


def test_sampled_misses_approximate_ground_truth(memstress_run):
    kernel, trace, result = memstress_run
    report = memory_profile(trace)
    assert report.total_l2 <= result.l2_misses_total
    assert report.total_l2 > 0.8 * result.l2_misses_total


def test_timeline_buckets_cover_run(memstress_run):
    kernel, trace, _ = memstress_run
    report = memory_profile(trace, buckets=10)
    assert 1 <= len(report.timeline) <= 10
    times = [t for t, _ in report.timeline]
    assert times == sorted(times)


def test_report_renders(memstress_run):
    kernel, trace, _ = memstress_run
    report = memory_profile(trace, kernel.symbols().process_names)
    text = format_memory_report(report)
    assert "memhog" in text
    assert "L2 misses" in text
    assert "miss density over time" in text


def test_empty_trace_gives_empty_report():
    from repro.core.stream import Trace

    report = memory_profile(Trace(events_by_cpu={0: []}))
    assert report.total_l2 == 0
    assert report.per_process == {}
    assert "0 L2 misses" in format_memory_report(report)
