"""Figure 8 fine-grained breakdown tool tests."""

from repro.ksim.ipc import FS_FUNCTION_NAMES
from repro.tools.breakdown import format_breakdown, process_breakdown


def get_breakdowns(run):
    kernel, trace, _ = run
    sym = kernel.symbols()
    return kernel, process_breakdown(
        trace, sym.syscall_names, sym.process_names, FS_FUNCTION_NAMES
    )


def test_every_user_process_has_a_breakdown(contention_run):
    kernel, bds = get_breakdowns(contention_run)
    user_pids = [p for p in kernel.processes if p >= 2]
    for pid in user_pids:
        assert pid in bds, f"pid {pid} missing"


def test_syscall_rows_named_like_figure8(contention_run):
    kernel, bds = get_breakdowns(contention_run)
    fs_pid = next(
        p for p, b in bds.items() if "SCopen" in b.syscalls
    )
    rows = bds[fs_pid].syscalls
    assert {"SCopen", "SCread", "SCclose"} <= set(rows)
    for row in rows.values():
        assert row.calls > 0
        assert row.total_cycles > 0


def test_syscall_call_counts_match_workload(contention_run):
    """fs_storm runs exactly iterations//2 open/read/close triples."""
    kernel, bds = get_breakdowns(contention_run)
    fs_pids = [p for p, b in bds.items()
               if kernel.processes[p].name.startswith("fsload")]
    assert fs_pids
    for pid in fs_pids:
        rows = bds[pid].syscalls
        assert rows["SCopen"].calls == rows["SCread"].calls == rows["SCclose"].calls


def test_ipc_attributed_to_fs_syscalls(contention_run):
    kernel, bds = get_breakdowns(contention_run)
    fs_pid = next(p for p, b in bds.items() if "SCopen" in b.syscalls)
    row = bds[fs_pid].syscalls["SCopen"]
    assert row.ipc_calls == row.calls  # one PPC per open
    assert row.ipc_cycles > 0
    assert bds[fs_pid].total_ipc_calls >= row.ipc_calls


def test_server_process_accumulates_service_functions(contention_run):
    kernel, bds = get_breakdowns(contention_run)
    server = bds.get(1)
    assert server is not None
    assert server.server_functions
    names = set(server.server_functions)
    assert names & {"open", "read", "close", "write", "lookup", "load_image"}


def test_compute_plus_ipc_bounded_by_total(contention_run):
    _, bds = get_breakdowns(contention_run)
    for b in bds.values():
        for row in b.syscalls.values():
            assert row.ipc_cycles + row.fault_cycles <= row.total_cycles * 1.05


def test_ex_process_time_positive_for_fs_heavy(contention_run):
    kernel, bds = get_breakdowns(contention_run)
    fs_pid = next(p for p, b in bds.items() if "SCopen" in b.syscalls)
    assert bds[fs_pid].ex_process_us > 0


def test_format_contains_figure8_elements(contention_run):
    kernel, bds = get_breakdowns(contention_run)
    fs_pid = next(p for p, b in bds.items() if "SCopen" in b.syscalls)
    text = format_breakdown(bds[fs_pid])
    assert "Ex-process" in text
    assert "SCopen" in text
    server_text = format_breakdown(bds[1])
    assert "thread entry points:" in server_text


def test_page_faults_attributed(multiprog_run):
    kernel, trace, _ = multiprog_run
    sym = kernel.symbols()
    bds = process_breakdown(trace, sym.syscall_names, sym.process_names)
    total_faults = sum(b.total_faults for b in bds.values())
    assert total_faults > 0
    assert any(b.total_fault_cycles > 0 for b in bds.values())
