"""Hold-time tool tests — the §2 anecdote reproduced end to end."""


from repro.core.facility import TraceFacility
from repro.ksim import Acquire, Compute, Kernel, KernelConfig, Release
from repro.ksim.costs import DEFAULT_COSTS
from repro.tools.holdtimes import format_hold_report, hold_times


def run_scenario(hold_cycles, competitors=0, ncpus=1, quantum=None):
    costs = DEFAULT_COSTS
    if quantum is not None:
        costs = costs.with_overrides(quantum=quantum)
    kernel = Kernel(KernelConfig(ncpus=ncpus, trace_all_lock_events=True,
                                 costs=costs))
    fac = TraceFacility(ncpus=ncpus, clock=kernel.clock, buffer_words=2048,
                        num_buffers=8)
    fac.enable_all()
    kernel.facility = fac
    lock = kernel.create_lock("TheLock")

    def holder(api):
        for _ in range(3):
            yield Acquire(lock, ("holder",))
            yield Compute(hold_cycles, pc="holder_critical")
            yield Release(lock)
            yield Compute(5_000, pc="holder_gap")

    def cpu_hog(api):
        yield Compute(30 * (quantum or DEFAULT_COSTS.quantum), pc="hog")

    kernel.spawn_process(holder, "holder", cpu=0)
    for c in range(competitors):
        kernel.spawn_process(cpu_hog, f"hog{c}", cpu=0)
    assert kernel.run_until_quiescent()
    return kernel, fac.decode(), lock


def test_holds_paired_and_measured():
    kernel, trace, lock = run_scenario(hold_cycles=10_000)
    report = hold_times(trace)
    assert len(report.holds) == 3
    assert report.unreleased == 0
    for h in report.holds:
        assert h.duration >= 10_000
        assert h.lock_id == lock.lock_id


def test_uninterrupted_holds_not_flagged():
    kernel, trace, lock = run_scenario(hold_cycles=10_000)
    report = hold_times(trace)
    assert all(not h.preempted for h in report.holds)


def test_the_paragraph2_anecdote():
    """A short critical section turns into a huge hold because the
    holder is preempted mid-hold; the scheduling events in the same
    stream explain it — the exact §2 story."""
    quantum = 50_000
    kernel, trace, lock = run_scenario(
        hold_cycles=3 * quantum,   # guaranteed to straddle quanta
        competitors=2, quantum=quantum,
    )
    report = hold_times(trace)
    long_holds = [h for h in report.holds if h.preempted]
    assert long_holds, "preempted holds must be detected"
    flagged = max(report.holds, key=lambda h: h.duration)
    assert flagged.preempted
    # The preempted hold is far longer than the critical section itself.
    assert flagged.duration > 2 * 3 * quantum
    text = format_hold_report(report, kernel.symbols().lock_names)
    assert "context-switched out" in text
    assert "TheLock" in text


def test_unreleased_hold_counted():
    kernel = Kernel(KernelConfig(ncpus=1, trace_all_lock_events=True))
    fac = TraceFacility(ncpus=1, clock=kernel.clock, buffer_words=1024,
                        num_buffers=8)
    fac.enable_all()
    kernel.facility = fac
    lock = kernel.create_lock("leaky")

    def leaker(api):
        yield Acquire(lock, ())
        yield Compute(1_000)
        # exits without releasing

    kernel.spawn_process(leaker, "leaker")
    kernel.run_until_quiescent()
    report = hold_times(fac.decode())
    assert report.unreleased == 1
    assert report.holds == []


def test_per_lock_aggregation():
    kernel, trace, lock = run_scenario(hold_cycles=10_000)
    report = hold_times(trace)
    agg = report.per_lock()
    count, total, mx, preempted = agg[lock.lock_id]
    assert count == 3
    assert total >= 30_000
    assert mx >= 10_000
