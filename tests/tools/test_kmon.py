"""kmon timeline (Figure 4) tests."""

import pytest

from repro.tools.kmon import Timeline
from repro.tools.listing import CYCLES_PER_SECOND


def test_render_has_lane_per_cpu(contention_run):
    _, trace, _ = contention_run
    text = Timeline(trace).render(width=60)
    for cpu in range(4):
        assert f"cpu{cpu}" in text


def test_density_band_present(contention_run):
    _, trace, _ = contention_run
    lines = Timeline(trace).render(width=60).splitlines()
    assert lines[1].startswith("events ")


def test_busy_cpus_show_busy(contention_run):
    _, trace, _ = contention_run
    text = Timeline(trace).render(width=60)
    cpu0_line = next(l for l in text.splitlines() if l.startswith("cpu0"))
    assert "#" in cpu0_line


def test_mark_and_count(contention_run):
    _, trace, _ = contention_run
    tl = Timeline(trace).mark("TRC_USER_RETURNED_MAIN")
    counts = tl.marked_counts()
    assert counts["TRC_USER_RETURNED_MAIN"] > 0
    assert "marked TRC_USER_RETURNED_MAIN" in tl.render(width=60)


def test_zoom_narrows_window(contention_run):
    _, trace, _ = contention_run
    tl = Timeline(trace)
    t0s = tl.t0 / CYCLES_PER_SECOND
    t1s = tl.t1 / CYCLES_PER_SECOND
    mid = (t0s + t1s) / 2
    zoomed = tl.zoom(t0s, mid)
    assert zoomed.t1 <= tl.t1
    assert (zoomed.t1 - zoomed.t0) < (tl.t1 - tl.t0)


def test_zoom_validation(contention_run):
    _, trace, _ = contention_run
    tl = Timeline(trace)
    with pytest.raises(ValueError):
        tl.zoom(0.5, 0.5)


def test_click_listing_lists_events_near_point(contention_run):
    _, trace, _ = contention_run
    tl = Timeline(trace)
    mid_s = (tl.t0 + tl.t1) / 2 / CYCLES_PER_SECOND
    text = tl.click_listing(mid_s, window_seconds=1e-4)
    assert text  # something happened near the middle of a busy run
    assert "TRC_" in text


def test_svg_renders(contention_run):
    _, trace, _ = contention_run
    svg = Timeline(trace).mark("TRC_USER_RETURNED_MAIN").render_svg()
    assert svg.startswith("<svg")
    assert svg.endswith("</svg>")
    assert "cpu0" in svg
    assert "<rect" in svg and "<line" in svg


def test_svg_includes_process_lanes(contention_run):
    kernel, trace, _ = contention_run
    names = kernel.symbols().process_names
    svg = Timeline(trace).show_processes(2, names=names).render_svg()
    assert names[2][:12] in svg
    assert 'fill="#58a55c"' in svg


def test_process_lanes_explicit(contention_run):
    kernel, trace, _ = contention_run
    names = kernel.symbols().process_names
    tl = Timeline(trace).show_processes(2, 3, names=names)
    text = tl.render(width=60)
    assert names[2][:6] in text
    lane = next(l for l in text.splitlines()
                if l.startswith(names[2][:6]))
    assert "=" in lane


def test_process_lanes_auto_selects_busiest(contention_run):
    _, trace, _ = contention_run
    tl = Timeline(trace).show_processes()
    assert tl.process_pids
    text = tl.render(width=60)
    assert f"pid{tl.process_pids[0]}" in text


def test_process_lanes_survive_zoom(contention_run):
    _, trace, _ = contention_run
    tl = Timeline(trace).show_processes(2)
    from repro.tools.listing import CYCLES_PER_SECOND
    t0s, t1s = tl.t0 / CYCLES_PER_SECOND, tl.t1 / CYCLES_PER_SECOND
    zoomed = tl.zoom(t0s, (t0s + t1s) / 2)
    assert zoomed.process_pids == [2]


def test_empty_trace_rejected():
    from repro.core.stream import Trace

    with pytest.raises(ValueError):
        Timeline(Trace(events_by_cpu={}))


def test_idle_periods_visible_with_imbalanced_load():
    """One busy CPU + one idle CPU: the idle lane shows dots (the
    'large idle periods clearly visible' experience of §4)."""
    from repro.core.facility import TraceFacility
    from repro.ksim.kernel import Kernel, KernelConfig
    from repro.ksim.ops import Compute

    kernel = Kernel(KernelConfig(ncpus=2, migration=False))
    fac = TraceFacility(ncpus=2, clock=kernel.clock, buffer_words=1024,
                        num_buffers=8)
    fac.enable_all()
    kernel.facility = fac

    def busy(api):
        yield Compute(10**6)

    def late(api):
        yield Compute(10)

    kernel.spawn_process(busy, "busy", cpu=0)
    kernel.spawn_process(late, "late", cpu=1)
    assert kernel.run_until_quiescent()
    text = Timeline(fac.decode()).render(width=60)
    cpu1_line = next(l for l in text.splitlines() if l.startswith("cpu1"))
    assert "." in cpu1_line  # mostly idle
