"""Shared fixtures: canned simulator runs for the tool tests."""

import pytest

from repro.workloads import run_contention, run_multiprog


@pytest.fixture(scope="module")
def contention_run():
    kernel, facility, result = run_contention(
        ncpus=4, workers_per_cpu=2, iterations=30, seed=5
    )
    trace = facility.decode()
    return kernel, trace, result


@pytest.fixture(scope="module")
def multiprog_run():
    kernel, facility, result = run_multiprog(ncpus=2, jobs_per_cpu=4, seed=9)
    trace = facility.decode()
    return kernel, trace, result
