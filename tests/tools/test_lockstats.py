"""Figure 7 lock-analysis tool tests, cross-validated against the
simulator's ground-truth lock statistics."""

import pytest

from repro.tools.lockstats import format_lockstats, lock_statistics


def test_rows_sorted_by_requested_column(contention_run):
    _, trace, _ = contention_run
    by_time = lock_statistics(trace, sort_by="time")
    assert [s.total_wait_cycles for s in by_time] == sorted(
        (s.total_wait_cycles for s in by_time), reverse=True
    )
    by_count = lock_statistics(trace, sort_by="count")
    assert [s.count for s in by_count] == sorted(
        (s.count for s in by_count), reverse=True
    )


def test_invalid_sort_key_rejected(contention_run):
    _, trace, _ = contention_run
    with pytest.raises(ValueError):
        lock_statistics(trace, sort_by="bogus")


def test_counts_match_ground_truth(contention_run):
    """Trace-derived contention counts equal the simulator's own
    counters — the analysis tool tells the truth."""
    kernel, trace, _ = contention_run
    stats = lock_statistics(trace, group_by_pid=False)
    derived = {}
    for s in stats:
        derived[s.lock_id] = derived.get(s.lock_id, 0) + s.count
    for lock in kernel.locks:
        assert derived.get(lock.lock_id, 0) == lock.contentions, lock.name


def test_wait_times_close_to_ground_truth(contention_run):
    kernel, trace, _ = contention_run
    stats = lock_statistics(trace, group_by_pid=False)
    derived_wait = {}
    for s in stats:
        derived_wait[s.lock_id] = (
            derived_wait.get(s.lock_id, 0) + s.total_wait_cycles
        )
    for lock in kernel.locks:
        if lock.contentions == 0:
            continue
        got = derived_wait.get(lock.lock_id, 0)
        # CONTEND_END is logged at grant; the kernel measures the same
        # interval, so agreement should be tight (within trace-point skew).
        assert got == pytest.approx(lock.total_wait_cycles, rel=0.05), lock.name


def test_contended_allocator_lock_ranks_high(contention_run):
    """The workload is an allocator storm: Figure 7's famous
    AllocRegionManager-via-GMalloc chain must appear near the top."""
    kernel, trace, _ = contention_run
    stats = lock_statistics(trace, group_by_pid=False)
    names = [kernel.symbols().lock_names.get(s.lock_id, "?") for s in stats[:4]]
    assert any("AllocRegionManager" in n or "PageAllocator" in n for n in names)


def test_chains_resolved_in_report(contention_run):
    kernel, trace, _ = contention_run
    sym = kernel.symbols()
    stats = lock_statistics(trace)
    text = format_lockstats(stats, sym.lock_names, sym.chains, top=5)
    assert "top 5 contended locks by time" in text
    assert "GMalloc::gMalloc()" in text or "DentryListHash" in text


def test_pid_attribution_present(contention_run):
    _, trace, _ = contention_run
    stats = lock_statistics(trace)
    assert any(s.pid is not None for s in stats)


def test_spin_counts_positive(contention_run):
    _, trace, _ = contention_run
    stats = lock_statistics(trace)
    assert all(s.spins >= s.count for s in stats if s.count)


def test_wait_distribution_percentiles(contention_run):
    _, trace, _ = contention_run
    stats = lock_statistics(trace, group_by_pid=False, collect_waits=True)
    busiest = max(stats, key=lambda s: s.count)
    assert len(busiest.waits) == busiest.count
    p50 = busiest.percentile_cycles(50)
    p99 = busiest.percentile_cycles(99)
    assert 0 <= p50 <= p99 <= busiest.max_wait_cycles
    assert busiest.mean_wait_cycles == pytest.approx(
        sum(busiest.waits) / busiest.count
    )


def test_percentiles_require_collection(contention_run):
    _, trace, _ = contention_run
    stats = lock_statistics(trace)
    contended = next(s for s in stats if s.count)
    with pytest.raises(ValueError):
        contended.percentile_cycles(50)
