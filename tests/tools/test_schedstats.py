"""Scheduler-statistics tool tests, cross-checked against ground truth."""

import pytest

from repro.tools.schedstats import format_sched_report, sched_statistics


@pytest.fixture(scope="module")
def sched_run(multiprog_run):
    kernel, trace, result = multiprog_run
    return kernel, trace, result, sched_statistics(trace)


def test_context_switches_match_kernel(sched_run):
    kernel, trace, result, report = sched_run
    derived = sum(s.context_switches for s in report.per_cpu.values())
    truth = sum(c.context_switches for c in kernel.cpus)
    assert derived == truth


def test_migrations_match_kernel(sched_run):
    kernel, trace, result, report = sched_run
    derived = sum(s.migrations_in for s in report.per_cpu.values())
    truth = sum(c.migrations_in for c in kernel.cpus)
    assert derived == truth


def test_utilization_close_to_kernel_accounting(sched_run):
    kernel, trace, result, report = sched_run
    for cpu in report.per_cpu:
        derived = report.utilization(cpu)
        truth = result.utilization[cpu]
        assert derived == pytest.approx(truth, abs=0.12), cpu


def test_process_time_covers_the_run(sched_run):
    kernel, trace, result, report = sched_run
    total_process = sum(report.process_time.values())
    total_busy = sum(s.busy_cycles for s in report.per_cpu.values())
    # Every busy cycle belongs to some process.
    assert total_process == pytest.approx(total_busy, rel=0.01)
    assert 0 < total_process <= report.span_cycles * len(report.per_cpu)


def test_busiest_process_is_plausible(sched_run):
    kernel, trace, result, report = sched_run
    top_pid, top_cycles = report.busiest_processes(1)[0]
    assert top_pid in kernel.processes
    assert top_cycles > 0


def test_report_renders(sched_run):
    kernel, trace, result, report = sched_run
    text = format_sched_report(report, kernel.symbols().process_names)
    assert "CPU time by process" in text
    assert "util" in text


def test_single_busy_cpu():
    from repro.core.facility import TraceFacility
    from repro.ksim import Compute, Kernel, KernelConfig

    kernel = Kernel(KernelConfig(ncpus=2, migration=False))
    fac = TraceFacility(ncpus=2, clock=kernel.clock, buffer_words=1024,
                        num_buffers=8)
    fac.enable_all()
    kernel.facility = fac

    def prog(api):
        yield Compute(10**6)

    p = kernel.spawn_process(prog, "solo", cpu=0)
    assert kernel.run_until_quiescent()
    report = sched_statistics(fac.decode())
    assert report.utilization(0) > 0.9
    assert report.process_time.get(p.pid, 0) >= 10**6
