"""Trace-comparison tool tests — the §4 tuning-iteration diff."""

import pytest

from repro.tools.compare import compare_traces, format_comparison
from repro.workloads import run_contention


@pytest.fixture(scope="module")
def before_after():
    """The lock-tuning iteration: global allocator path, then the fix."""
    # alloc_size must stay below the large-allocation threshold so the
    # global-path fraction (the thing being "fixed") is what routes.
    k_before, fac_before, _ = run_contention(
        ncpus=4, workers_per_cpu=2, iterations=40, alloc_size=8_192,
        global_alloc_fraction=0.9, pc_sample_period=3_000, seed=5,
    )
    k_after, fac_after, _ = run_contention(
        ncpus=4, workers_per_cpu=2, iterations=40, alloc_size=8_192,
        global_alloc_fraction=0.05, pc_sample_period=3_000, seed=5,
    )
    return (k_before, fac_before.decode(), k_after, fac_after.decode())


def test_speedup_detected(before_after):
    k_b, t_b, k_a, t_a = before_after
    comparison = compare_traces(t_b, t_a)
    assert comparison.speedup > 1.0
    assert comparison.total_wait_after < comparison.total_wait_before


def test_fixed_lock_shows_as_improvement(before_after):
    k_b, t_b, k_a, t_a = before_after
    comparison = compare_traces(t_b, t_a)
    improved = comparison.improvements()
    assert improved
    # The "fixed" allocator lock must appear among the improvements
    # (other locks may improve more once the system speeds up overall).
    names = [k_b.symbols().lock_names.get(d.lock_id, "") for d in improved]
    assert any("AllocRegionManager.global" in n for n in names), names


def test_profile_shift_visible(before_after):
    k_b, t_b, k_a, t_a = before_after
    comparison = compare_traces(t_b, t_a, k_b.symbols().pc_names)
    spin_funcs = [n for n in comparison.profile_deltas
                  if "_acquire" in n]
    assert spin_funcs
    total_b = sum(comparison.profile_deltas[n][0] for n in spin_funcs)
    total_a = sum(comparison.profile_deltas[n][1] for n in spin_funcs)
    assert total_a < total_b, "less spinning after the fix"


def test_format_report(before_after):
    k_b, t_b, k_a, t_a = before_after
    comparison = compare_traces(t_b, t_a, k_b.symbols().pc_names)
    text = format_comparison(comparison, k_b.symbols().lock_names)
    assert "elapsed:" in text
    assert "improved locks:" in text
    assert "x)" in text


def test_identical_traces_compare_neutral(before_after):
    k_b, t_b, *_ = before_after
    comparison = compare_traces(t_b, t_b)
    assert comparison.speedup == pytest.approx(1.0)
    assert not comparison.improvements()
    assert not comparison.regressions()


def test_event_deltas_cover_both_sides(before_after):
    k_b, t_b, k_a, t_a = before_after
    comparison = compare_traces(t_b, t_a)
    assert "TRC_LOCK_CONTEND_START" in comparison.event_deltas
    b, a = comparison.event_deltas["TRC_LOCK_CONTEND_START"]
    assert a < b
