"""Tests for the Figure 5 listing and Figure 6 profile tools."""

import re

from repro.tools.listing import event_listing, format_event, format_listing
from repro.tools.pcprofile import format_profile, pc_profile, profile_pids


class TestListing:
    def test_lines_have_figure5_shape(self, contention_run):
        _, trace, _ = contention_run
        text = format_listing(trace, limit=20)
        lines = text.splitlines()
        assert len(lines) == 20
        # "   0.0001234 TRC_NAME   description"
        for line in lines:
            assert re.match(r"^\s*\d+\.\d{7} TRC_\w+\s+\S", line)

    def test_time_window_selection(self, contention_run):
        _, trace, _ = contention_run
        all_events = event_listing(trace)
        mid = (all_events[0].time + all_events[-1].time) // 2 / 1e9
        windowed = event_listing(trace, start=mid)
        assert 0 < len(windowed) < len(all_events)
        assert all(e.time / 1e9 >= mid for e in windowed)

    def test_name_filter(self, contention_run):
        _, trace, _ = contention_run
        only = event_listing(trace, names=["TRC_SYSCALL_ENTER"])
        assert only
        assert all(e.name == "TRC_SYSCALL_ENTER" for e in only)

    def test_cpu_filter(self, contention_run):
        _, trace, _ = contention_run
        only = event_listing(trace, cpu=2)
        assert only
        assert all(e.cpu == 2 for e in only)

    def test_control_events_hidden_by_default(self, contention_run):
        _, trace, _ = contention_run
        assert all(not e.is_control for e in event_listing(trace))
        with_ctrl = event_listing(trace, include_control=True)
        assert any(e.is_control for e in with_ctrl)

    def test_format_event_renders_description(self, contention_run):
        _, trace, _ = contention_run
        ev = event_listing(trace, names=["TRC_PROC_CREATE"])[0]
        line = format_event(ev)
        assert "created by" in line


class TestPcProfile:
    def test_histogram_sorted_descending(self, contention_run):
        kernel, trace, _ = contention_run
        hist = pc_profile(trace, kernel.symbols().pc_names)
        assert hist
        counts = [c for c, _ in hist]
        assert counts == sorted(counts, reverse=True)

    def test_hot_function_is_the_spinner_or_workload(self, contention_run):
        kernel, trace, _ = contention_run
        hist = pc_profile(trace, kernel.symbols().pc_names)
        top_names = [name for _, name in hist[:3]]
        assert any(
            "churn" in n or "_acquire" in n or "gMalloc" in n
            for n in top_names
        )

    def test_per_pid_profile_differs(self, contention_run):
        kernel, trace, _ = contention_run
        pids = profile_pids(trace)
        assert len(pids) >= 2
        sym = kernel.symbols().pc_names
        h1 = dict((n, c) for c, n in pc_profile(trace, sym, pid=pids[0]))
        total = dict((n, c) for c, n in pc_profile(trace, sym))
        assert sum(h1.values()) < sum(total.values())

    def test_server_pid_sees_server_functions(self, contention_run):
        """PPC moves execution into baseServers (pid 1): its profile
        contains the hash/dentry functions of Figure 6."""
        kernel, trace, _ = contention_run
        hist = pc_profile(trace, kernel.symbols().pc_names, pid=1)
        names = [n for _, n in hist]
        assert any("Hash" in n or "DirLinuxFS" in n or "Dentry" in n
                   or "IPCallee" in n for n in names)

    def test_unsymbolized_pcs_render_hex(self, contention_run):
        _, trace, _ = contention_run
        hist = pc_profile(trace, pc_names=None)
        assert all(name.startswith("0x") for _, name in hist)

    def test_format_matches_figure6_layout(self, contention_run):
        kernel, trace, _ = contention_run
        hist = pc_profile(trace, kernel.symbols().pc_names, pid=1)
        text = format_profile(hist, pid=1,
                              mapped_filename="servers/baseServers/baseServers.dbg")
        lines = text.splitlines()
        assert lines[0].startswith("histogram for pid 0x1 mapped filename")
        assert lines[1].strip().startswith("count")
