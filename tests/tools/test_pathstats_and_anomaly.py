"""Path-frequency statistics and anomaly-report tests."""

from repro.tools.anomaly import verify_trace
from repro.tools.pathstats import (
    event_histogram,
    path_frequencies,
    relative_frequency,
)


class TestPathstats:
    def test_histogram_sorted(self, contention_run):
        _, trace, _ = contention_run
        hist = event_histogram(trace)
        counts = [c for c, _ in hist]
        assert counts == sorted(counts, reverse=True)
        assert all(not n.startswith("TRC_CTRL") for _, n in hist)

    def test_histogram_includes_control_on_request(self, contention_run):
        _, trace, _ = contention_run
        names = [n for _, n in event_histogram(trace, include_control=True)]
        assert any(n.startswith("TRC_CTRL") for n in names)

    def test_bigram_fast_path_dominates(self, multiprog_run):
        """PGFLT is almost always immediately followed by PGFLT_DONE."""
        _, trace, _ = multiprog_run
        bigrams = dict(
            (pair, count) for count, pair in path_frequencies(trace)
        )
        done = bigrams.get(("TRC_EXCEPTION_PGFLT", "TRC_EXCEPTION_PGFLT_DONE"), 0)
        assert done > 0

    def test_per_cpu_bigrams_subset(self, contention_run):
        _, trace, _ = contention_run
        total = sum(c for c, _ in path_frequencies(trace))
        cpu0 = sum(c for c, _ in path_frequencies(trace, cpu=0))
        assert 0 < cpu0 < total

    def test_relative_frequency(self, contention_run):
        _, trace, _ = contention_run
        ratio = relative_frequency(
            trace, "TRC_EXCEPTION_PPC_RETURN", "TRC_EXCEPTION_PPC_CALL"
        )
        assert ratio is not None
        assert 0.95 <= ratio <= 1.05  # calls pair with returns

    def test_relative_frequency_zero_denominator(self, contention_run):
        _, trace, _ = contention_run
        assert relative_frequency(trace, "TRC_TEST_EVENT0", "TRC_TEST_EVENT1") is None


class TestAnomalyReport:
    def test_clean_run_reports_ok(self, contention_run):
        _, trace, _ = contention_run
        report = verify_trace(trace)
        assert report.ok
        assert report.by_kind == {}
        assert "trace clean" in report.describe()

    def test_corrupted_trace_reported(self):
        from repro.core.buffers import TraceControl
        from repro.core.logger import TraceLogger
        from repro.core.majors import Major
        from repro.core.mask import TraceMask
        from repro.core.registry import default_registry
        from repro.core.stream import TraceReader
        from repro.core.timestamps import ManualClock

        control = TraceControl(buffer_words=32, num_buffers=4)
        mask = TraceMask()
        mask.enable_all()
        logger = TraceLogger(control, mask, ManualClock(),
                             registry=default_registry())
        logger.start()
        for i in range(100):
            logger.log1(Major.TEST, 1, i)
        records = control.flush()
        records[0].words[10] = 0  # stomp an event header
        trace = TraceReader(registry=default_registry()).decode_records(records)
        report = verify_trace(trace)
        assert not report.ok
        assert "garbled" in report.by_kind
        assert report.by_cpu.get(0, 0) >= 1
        assert "anomalies" in report.describe()
