"""Deadlock detection (§4.2) tests."""

from repro.core.facility import TraceFacility
from repro.ksim.kernel import Kernel, KernelConfig
from repro.ksim.ops import Acquire, Compute, Release
from repro.tools.deadlock import find_deadlocks


def run_lock_scenario(programs, ncpus=2, max_cycles=10**8):
    kernel = Kernel(KernelConfig(ncpus=ncpus, trace_all_lock_events=True))
    fac = TraceFacility(ncpus=ncpus, clock=kernel.clock, buffer_words=1024,
                        num_buffers=8)
    fac.enable_all()
    kernel.facility = fac
    locks = {}

    def lock(name):
        if name not in locks:
            locks[name] = kernel.create_lock(name)
        return locks[name]

    for i, prog in enumerate(programs):
        kernel.spawn_process(lambda api, p=prog: p(api, lock), f"p{i}", cpu=i % ncpus)
    finished = kernel.run_until_quiescent(max_cycles=max_cycles)
    return kernel, fac.decode(), finished


def test_abba_deadlock_detected():
    """The classic: T1 takes A then wants B; T2 takes B then wants A."""

    def t1(api, lock):
        yield Acquire(lock("A"), ("t1",))
        yield Compute(50_000)
        yield Acquire(lock("B"), ("t1",))
        yield Release(lock("B"))
        yield Release(lock("A"))

    def t2(api, lock):
        yield Acquire(lock("B"), ("t2",))
        yield Compute(50_000)
        yield Acquire(lock("A"), ("t2",))
        yield Release(lock("A"))
        yield Release(lock("B"))

    kernel, trace, finished = run_lock_scenario([t1, t2])
    assert not finished, "the scenario must actually deadlock"
    report = find_deadlocks(trace)
    assert report.deadlocked
    assert len(report.cycles[0]) == 2
    desc = report.describe(lock_names=kernel.symbols().lock_names)
    assert "deadlock cycle" in desc
    assert "waits for" in desc


def test_three_way_cycle_detected():
    def maker(first, second):
        def prog(api, lock):
            yield Acquire(lock(first), ())
            yield Compute(50_000)
            yield Acquire(lock(second), ())
            yield Release(lock(second))
            yield Release(lock(first))
        return prog

    kernel, trace, finished = run_lock_scenario(
        [maker("A", "B"), maker("B", "C"), maker("C", "A")], ncpus=3
    )
    assert not finished
    report = find_deadlocks(trace)
    assert report.deadlocked
    assert any(len(c) == 3 for c in report.cycles)


def test_clean_locking_reports_no_deadlock():
    def prog(api, lock):
        for _ in range(5):
            yield Acquire(lock("only"), ())
            yield Compute(10_000)
            yield Release(lock("only"))

    kernel, trace, finished = run_lock_scenario([prog, prog])
    assert finished
    report = find_deadlocks(trace)
    assert not report.deadlocked
    assert report.describe() == "no deadlock detected"


def test_blocked_but_not_deadlocked_is_not_reported():
    """A thread waiting on a lock the owner never releases (but with no
    cycle) is a hang, not a deadlock cycle."""

    def holder(api, lock):
        yield Acquire(lock("X"), ())
        yield Compute(10**7)  # holds it for ages, never deadlocks

    def waiter(api, lock):
        yield Compute(1_000)
        yield Acquire(lock("X"), ())
        yield Release(lock("X"))

    kernel, trace, finished = run_lock_scenario(
        [holder, waiter], max_cycles=2 * 10**6
    )
    report = find_deadlocks(trace)
    assert not report.deadlocked
