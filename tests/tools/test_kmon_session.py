"""Interactive kmon session tests (scripted command sequences)."""

import io

import pytest

from repro.tools.kmon_session import KmonSession
from repro.tools.listing import CYCLES_PER_SECOND


@pytest.fixture()
def session(contention_run):
    kernel, trace, _ = contention_run
    return KmonSession(trace, kernel.symbols().process_names)


def test_help_lists_commands(session):
    out = session.execute("help")
    for cmd in ("zoom", "mark", "click", "svg", "lanes"):
        assert cmd in out


def test_render_and_width(session):
    out = session.execute("render 50")
    assert "cpu0" in out
    line = next(l for l in out.splitlines() if l.startswith("cpu0"))
    assert len(line) <= 60


def test_zoom_and_out_stack(session):
    t0 = session.timeline.t0 / CYCLES_PER_SECOND
    t1 = session.timeline.t1 / CYCLES_PER_SECOND
    mid = (t0 + t1) / 2
    session.execute(f"zoom {t0} {mid}")
    assert session.timeline.t1 <= mid * CYCLES_PER_SECOND + 1
    info = session.execute("info")
    assert "1 zoom levels deep" in info
    session.execute("out")
    assert "0 zoom levels deep" in session.execute("info")
    assert session.execute("out") == "already at the outermost view"


def test_mark_and_counts(session):
    out = session.execute("mark TRC_USER_RETURNED_MAIN")
    assert "TRC_USER_RETURNED_MAIN:" in out
    counts = session.execute("counts")
    assert "TRC_USER_RETURNED_MAIN" in counts


def test_click_lists_events(session):
    mid = (session.timeline.t0 + session.timeline.t1) / 2 / CYCLES_PER_SECOND
    out = session.execute(f"click {mid} 1e-4")
    assert "TRC_" in out or out == "no events in that window"


def test_lanes(session):
    out = session.execute("lanes 2 3")
    assert "[2, 3]" in out
    rendered = session.execute("render")
    assert "=" in rendered


def test_svg_written(session, tmp_path):
    path = str(tmp_path / "view.svg")
    out = session.execute(f"svg {path}")
    assert "wrote" in out
    assert open(path).read().startswith("<svg")


def test_unknown_and_bad_args(session):
    assert "unknown command" in session.execute("dance")
    assert session.execute("zoom not-a-number 2").startswith("error:")
    assert session.execute("") == ""


def test_repl_loop(session):
    t0 = session.timeline.t0 / CYCLES_PER_SECOND
    t1 = session.timeline.t1 / CYCLES_PER_SECOND
    script = io.StringIO(
        f"mark TRC_USER_RETURNED_MAIN\nzoom {t0} {(t0 + t1) / 2}\n"
        "counts\nquit\n"
    )
    out = io.StringIO()
    session.run(script, out)
    text = out.getvalue()
    assert "kmon interactive session" in text
    assert "TRC_USER_RETURNED_MAIN" in text
