"""Scalar-vs-columnar equivalence for every ported analysis tool.

Each tool grew a ``columnar=True`` fast path over structure-of-arrays
event batches; these tests pin the contract that the columnar path is
output-identical to the scalar per-event walk — on simulator workloads,
on corrupted streams, and when the input is itself a ``ColumnarTrace``.
"""

import random

import numpy as np
import pytest

from repro.core.columnar import ColumnarTraceReader, as_batch
from repro.core.registry import default_registry
from repro.core.stream import TraceReader
from repro.tools.breakdown import process_breakdown
from repro.tools.context import ColumnarContext, ContextTracker
from repro.tools.kmon import Timeline
from repro.tools.listing import event_listing
from repro.tools.lockstats import lock_statistics
from repro.tools.pcprofile import pc_profile, profile_pids
from repro.tools.schedstats import format_sched_report, sched_statistics
from tests.core.test_parallel import build_records


def _listing_tuples(events):
    return [(e.cpu, e.seq, e.offset, e.ts32, e.major, e.minor,
             tuple(e.data), e.time) for e in events]


@pytest.fixture
def contention_trace(contention_run):
    _kernel, trace, _result = contention_run
    return trace


@pytest.fixture
def multiprog_trace(multiprog_run):
    _kernel, trace, _result = multiprog_run
    return trace


@pytest.fixture(scope="module")
def corrupt_trace():
    records = build_records(n_events=900, ncpus=3)
    rng = random.Random(42)
    for rec in records:
        if rng.random() < 0.4 and rec.fill_words > 1:
            rec.words[rng.randrange(1, rec.fill_words)] = \
                np.uint64(rng.getrandbits(64))
    return TraceReader(registry=default_registry(),
                       strict=False).decode_records(records)


class TestContext:
    def test_columnar_context_matches_tracker(self, contention_trace):
        trace = contention_trace
        tracker = ContextTracker(trace)
        b = as_batch(trace)
        ctx = ColumnarContext(b)
        events = trace.all_events()
        assert len(events) == len(b)
        pids = ctx.pid_list()
        for i, e in enumerate(events):
            assert tracker.thread_of(e) == ctx.thread[i]
            assert tracker.pid_of(e) == pids[i]


class TestToolEquivalence:
    def test_pc_profile(self, contention_trace):
        assert pc_profile(contention_trace, columnar=False) == \
            pc_profile(contention_trace, columnar=True)
        pids = profile_pids(contention_trace, columnar=False)
        assert pids == profile_pids(contention_trace, columnar=True)
        for pid in pids[:2] + [None, -1, 10 ** 9]:
            assert pc_profile(contention_trace, pid=pid, columnar=False) == \
                pc_profile(contention_trace, pid=pid, columnar=True)

    @pytest.mark.parametrize("kw", [
        dict(),
        dict(include_control=True),
        dict(cpu=0),
        dict(limit=17),
        dict(start=1e-7, end=2e-6, limit=9),
        dict(names=["TRC_LOCK_CONTEND_START"]),
        dict(names=["nope"]),
    ], ids=lambda kw: ",".join(kw) or "plain")
    def test_event_listing(self, contention_trace, kw):
        assert _listing_tuples(
            event_listing(contention_trace, columnar=False, **kw)
        ) == _listing_tuples(
            event_listing(contention_trace, columnar=True, **kw))

    @pytest.mark.parametrize("sort_by", ["time", "count", "spin", "max"])
    @pytest.mark.parametrize("group_by_pid", [True, False])
    def test_lock_statistics(self, contention_trace, sort_by, group_by_pid):
        assert lock_statistics(
            contention_trace, sort_by=sort_by, group_by_pid=group_by_pid,
            collect_waits=True, columnar=False,
        ) == lock_statistics(
            contention_trace, sort_by=sort_by, group_by_pid=group_by_pid,
            collect_waits=True, columnar=True)

    def test_process_breakdown(self, multiprog_trace):
        assert process_breakdown(multiprog_trace, columnar=False) == \
            process_breakdown(multiprog_trace, columnar=True)

    def test_sched_statistics(self, multiprog_trace):
        scalar = sched_statistics(multiprog_trace, columnar=False)
        columnar = sched_statistics(multiprog_trace, columnar=True)
        assert scalar == columnar
        assert format_sched_report(scalar) == format_sched_report(columnar)

    def test_kmon_timeline(self, multiprog_trace):
        marks = ("TRC_PROC_CTX_SWITCH", "TRC_LOCK_CONTEND_START")
        ts = Timeline(multiprog_trace, columnar=False).mark(*marks) \
            .show_processes()
        tc = Timeline(multiprog_trace, columnar=True).mark(*marks) \
            .show_processes()
        assert ts.render() == tc.render()
        assert ts.render_svg() == tc.render_svg()
        assert ts.marked_counts() == tc.marked_counts()
        assert ts.zoom(0, 1e-4).render() == tc.zoom(0, 1e-4).render()


class TestOnDamagedAndColumnarInputs:
    def test_all_tools_on_corrupt_trace(self, corrupt_trace):
        tr = corrupt_trace
        assert pc_profile(tr, columnar=False) == pc_profile(tr, columnar=True)
        assert _listing_tuples(event_listing(tr, columnar=False)) == \
            _listing_tuples(event_listing(tr, columnar=True))
        assert lock_statistics(tr, columnar=False) == \
            lock_statistics(tr, columnar=True)
        assert process_breakdown(tr, columnar=False) == \
            process_breakdown(tr, columnar=True)
        assert sched_statistics(tr, columnar=False) == \
            sched_statistics(tr, columnar=True)

    def test_tools_accept_columnar_trace(self, corrupt_trace):
        # A ColumnarTrace input must produce the same reports as the
        # scalar Trace input, on both tool paths.
        records = build_records(n_events=500, ncpus=2)
        scalar = TraceReader(registry=default_registry()) \
            .decode_records(records)
        columnar = ColumnarTraceReader(registry=default_registry()) \
            .decode_records(records)
        assert sched_statistics(scalar, columnar=False) == \
            sched_statistics(columnar, columnar=True)
        assert process_breakdown(scalar, columnar=False) == \
            process_breakdown(columnar, columnar=True)
        assert _listing_tuples(event_listing(scalar, columnar=False)) == \
            _listing_tuples(event_listing(columnar, columnar=True))
