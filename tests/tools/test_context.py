"""Context-tracker tests: the unified-facility attribution machinery."""

from repro.core.majors import Major
from repro.tools.context import ContextTracker


def test_thread_pid_mapping_built(contention_run):
    kernel, trace, _ = contention_run
    ctx = ContextTracker(trace)
    assert ctx.thread_pid  # THREAD_CREATE events seen
    # Every mapped pid is a real process.
    for pid in set(ctx.thread_pid.values()):
        assert pid in kernel.processes


def test_syscall_events_attributed_to_their_process(contention_run):
    """SYSCALL events carry their pid in data[0]; the context tracker
    must agree — cross-validating attribution against ground truth."""
    kernel, trace, _ = contention_run
    ctx = ContextTracker(trace)
    checked = mismatched = 0
    for e in trace.all_events():
        if e.major == Major.SYSCALL and len(e.data) >= 2:
            inferred = ctx.pid_of(e)
            if inferred is None:
                continue
            checked += 1
            if inferred != e.data[0]:
                mismatched += 1
    assert checked > 50
    # Context switches and event logging are not atomic, so allow a
    # tiny attribution slop at switch boundaries.
    assert mismatched / checked < 0.02


def test_unknown_event_gets_default_context():
    from repro.core.stream import Trace, TraceEvent

    trace = Trace(events_by_cpu={0: []})
    ctx = ContextTracker(trace)
    orphan = TraceEvent(cpu=0, seq=0, offset=0, ts32=0, major=1, minor=0,
                        data=[])
    assert ctx.thread_of(orphan) == 0
    assert ctx.pid_of(orphan) is None
