"""I/O statistics tool tests."""

import pytest

from repro.core.facility import TraceFacility
from repro.ksim import Kernel, KernelConfig
from repro.tools.iostats import format_io_report, io_statistics


@pytest.fixture(scope="module")
def io_run():
    kernel = Kernel(KernelConfig(ncpus=2))
    fac = TraceFacility(ncpus=2, clock=kernel.clock, buffer_words=2048,
                        num_buffers=8)
    fac.enable_all()
    kernel.facility = fac

    def heavy(api):
        fd = yield from api.open("/data/big")
        for _ in range(3):
            yield from api.read(fd, 16_384, cached=False)
        yield from api.close(fd)

    def light(api):
        fd = yield from api.open("/data/small")
        yield from api.read(fd, 512, cached=True)
        yield from api.write(fd, 256)
        yield from api.close(fd)

    p_heavy = kernel.spawn_process(heavy, "heavy", cpu=0)
    p_light = kernel.spawn_process(light, "light", cpu=1)
    assert kernel.run_until_quiescent()
    return kernel, fac.decode(), p_heavy.pid, p_light.pid


def test_all_ops_paired(io_run):
    kernel, trace, heavy_pid, light_pid = io_run
    report = io_statistics(trace)
    assert report.unmatched == 0
    kinds = [(o.pid, o.kind) for o in report.ops]
    assert kinds.count((heavy_pid, "read")) == 3
    assert kinds.count((light_pid, "read")) == 1
    assert kinds.count((light_pid, "write")) == 1


def test_uncached_latency_dominates(io_run):
    kernel, trace, heavy_pid, light_pid = io_run
    report = io_statistics(trace)
    per = report.per_process()
    assert per[heavy_pid][2] > 10 * per[light_pid][2]  # mean latency
    slowest = report.slowest(1)[0]
    assert slowest.pid == heavy_pid
    assert slowest.latency >= kernel.disk.seek_cycles


def test_interrupts_counted(io_run):
    kernel, trace, *_ = io_run
    report = io_statistics(trace)
    assert report.interrupts.get(kernel.disk.device_id) == 3


def test_bytes_accounted(io_run):
    kernel, trace, heavy_pid, light_pid = io_run
    per = io_statistics(trace).per_process()
    assert per[heavy_pid][1] == 3 * 16_384
    assert per[light_pid][1] == 512 + 256


def test_report_renders(io_run):
    kernel, trace, *_ = io_run
    text = format_io_report(io_statistics(trace))
    assert "I/O operations" in text
    assert "slowest operations" in text
    assert "device interrupts" in text


def test_empty_trace():
    from repro.core.stream import Trace

    report = io_statistics(Trace(events_by_cpu={}))
    assert report.ops == [] and report.unmatched == 0
    assert "0 I/O operations" in format_io_report(report)
