"""§2: hardware counters integrated with the tracing infrastructure.

Paper claim: "the trace infrastructure may be used to study memory
bottlenecks, memory hot-spots, and other I/O interactions by logging
hardware counter events, e.g., cache-line misses.  Integrating the
hardware counter mechanism and the tracing infrastructure allows the
counters to be sampled and understood at various stages throughout the
programs or operating systems execution."

Reproduction: the memory-stress workload (one thrashing streamer among
cache-resident processes) with overflow-driven counter sampling into the
trace; the memory-profile tool must finger the thrasher from the trace
alone, the sampled totals must track the machine's ground truth, and
migration's cold-cache cost must be visible — the locality argument
behind K42's per-processor design.
"""

import pytest

from _benchutil import write_result
from repro.ksim.hwcounters import HwCounter
from repro.tools.memprofile import format_memory_report, memory_profile
from repro.workloads import run_memstress


@pytest.fixture(scope="module")
def memstress():
    kernel, facility, result = run_memstress(ncpus=2, bursts=10)
    return kernel, facility.decode(), result


def test_hotspot_identified_from_trace(benchmark, memstress):
    kernel, trace, result = memstress
    report = memory_profile(trace, kernel.symbols().process_names)
    text = format_memory_report(report)
    write_result("hwperf_hotspots", text)
    top = report.hottest(1)[0]
    assert top.pid == result.thrasher_pid
    assert top.l2_misses > 0.6 * report.total_l2
    benchmark(lambda: memory_profile(trace))


def test_sampled_counters_track_ground_truth(benchmark, memstress):
    kernel, trace, result = memstress
    report = memory_profile(trace)
    ratio = report.total_l2 / max(1, result.l2_misses_total)
    write_result(
        "hwperf_ground_truth",
        f"machine counters: {result.l2_misses_total:,} L2 misses\n"
        f"trace-sampled:    {report.total_l2:,} "
        f"({100 * ratio:.1f}% captured; remainder below one overflow "
        "threshold per CPU)",
    )
    assert 0.9 <= ratio <= 1.0
    benchmark(lambda: memory_profile(trace))


def test_migration_cold_cache_cost(benchmark):
    """Pinned vs migrating: work stealing buys utilization at the price
    of cold-cache misses — the trade K42's locality emphasis is about.
    The counters make it measurable from the trace."""
    from repro.core.facility import TraceFacility
    from repro.ksim import Compute, Kernel, KernelConfig

    def run(migration: bool):
        kernel = Kernel(KernelConfig(
            ncpus=2, migration=migration, hw_overflow_threshold=2_000,
        ))
        fac = TraceFacility(ncpus=2, clock=kernel.clock,
                            buffer_words=4096, num_buffers=16)
        fac.enable_all()
        kernel.facility = fac

        def job(j):
            def prog(api):
                api.set_working_set(200)  # warm set worth keeping
                for _ in range(8):
                    yield Compute(100_000 + 37_000 * j, pc="user:hot_loop")
                    yield from api.sleep(20_000 + 11_000 * (j % 3))
            return prog

        # Pinned: jobs distributed once and kept there.  Migrating: all
        # start on CPU 0; staggered sleeps make work stealing bounce
        # threads between CPUs, going cache-cold on each move.
        for j in range(3):
            kernel.spawn_process(
                job(j), f"j{j}", cpu=(j % 2) if not migration else 0
            )
        assert kernel.run_until_quiescent()
        return (kernel.hw.totals()[HwCounter.L2_MISSES],
                kernel.hw.cold_bursts, kernel.engine.now)

    pinned_misses, pinned_bursts, pinned_elapsed = run(False)
    migr_misses, migr_bursts, migr_elapsed = run(True)
    write_result(
        "hwperf_migration_cost",
        "cold-cache cost of losing locality (3 jobs, 2 CPUs)\n"
        f"{'':>16} {'L2 misses':>10} {'cold bursts':>12} {'elapsed':>12}\n"
        f"{'pinned 1/CPU':>16} {pinned_misses:>10,} {pinned_bursts:>12} "
        f"{pinned_elapsed:>12,}\n"
        f"{'bouncing (steal)':>16} {migr_misses:>10,} {migr_bursts:>12} "
        f"{migr_elapsed:>12,}\n"
        "same throughput, more cache refills when threads lose their CPU —\n"
        "the locality K42's per-processor structures protect",
    )
    assert migr_bursts > pinned_bursts            # locality lost
    assert migr_misses > pinned_misses            # ...and it costs misses
    benchmark(lambda: run(True))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_hwperf.py`)
# ---------------------------------------------------------------------------
from functools import lru_cache  # noqa: E402

from repro.perf import benchmark as perf_bench  # noqa: E402


@lru_cache(maxsize=1)
def _memstress_trace(quick):
    _, facility, _ = run_memstress(ncpus=2, bursts=4 if quick else 10)
    return facility.decode()


@perf_bench("hwperf.memory_profile", quick=True, tolerance=0.4)
def hb_memory_profile(b):
    trace = _memstress_trace(b.quick)
    report = b(lambda: memory_profile(trace))
    assert report.total_l2 > 0


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
