"""Figure 8: fine-grained system behaviour (per-syscall/IPC breakdown).

Paper artifact: for one process, a table of syscalls with time, call
count, and event count; a parallel IPC column (SCexecve made 34 IPCs for
691 usecs); an "Ex-process" row for time spent elsewhere on its behalf;
and per-entry-point service times inside servers.

Reproduction: run an SDET script, produce the same table purely from
trace events, and cross-check call counts and IPC pairing against the
simulator's ground truth.
"""

import pytest

from _benchutil import write_result
from repro.ksim.ipc import FS_FUNCTION_NAMES
from repro.tools.breakdown import format_breakdown, process_breakdown
from repro.workloads import run_sdet


@pytest.fixture(scope="module")
def breakdown_run():
    kernel, facility, _ = run_sdet(2, scripts_per_cpu=1,
                                   commands_per_script=4)
    trace = facility.decode()
    sym = kernel.symbols()
    bds = process_breakdown(trace, sym.syscall_names, sym.process_names,
                            FS_FUNCTION_NAMES)
    return kernel, trace, bds


def test_fig8_script_process_table(benchmark, breakdown_run):
    kernel, trace, bds = breakdown_run
    script_pid = next(p for p, b in bds.items()
                      if kernel.processes[p].name.startswith("sdet_script"))
    b = bds[script_pid]
    text = format_breakdown(b)
    write_result("fig8_breakdown_script", text)

    # The script forks/execs its commands and waits for them.
    assert "SCfork" in b.syscalls
    assert "SCexecve" in b.syscalls
    assert "SCwaitpid" in b.syscalls
    # SCexecve does IPC (image loading through the file server) — the
    # paper's "SCexecve made 34 IPCs" phenomenon.
    assert b.syscalls["SCexecve"].ipc_calls >= b.syscalls["SCexecve"].calls
    assert b.syscalls["SCexecve"].ipc_cycles > 0
    benchmark(lambda: process_breakdown(trace))


def test_fig8_server_entry_points(benchmark, breakdown_run):
    kernel, trace, bds = breakdown_run
    server = bds[1]
    text = format_breakdown(server)
    write_result("fig8_breakdown_server", text)
    assert server.server_functions, "baseServers must show entry points"
    total_calls = sum(c for c, _ in server.server_functions.values())
    assert total_calls == kernel.fileserver.calls
    benchmark(lambda: format_breakdown(server))


def test_fig8_command_syscall_counts_ground_truth(benchmark, breakdown_run):
    """Each command's open/read/write/close counts match its workload
    specification — the tool's numbers are exact, not approximate."""
    from repro.workloads.sdet import COMMANDS

    kernel, trace, bds = breakdown_run
    checked = 0
    for pid, b in bds.items():
        name = kernel.processes[pid].name
        cmd = name.split(".")[0]
        if cmd not in COMMANDS:
            continue
        _, reads, writes, _, _, _, opens = COMMANDS[cmd]
        if "SCopen" in b.syscalls:
            assert b.syscalls["SCopen"].calls == opens, name
            checked += 1
        if reads and opens and "SCread" in b.syscalls:
            assert b.syscalls["SCread"].calls == reads * opens, name
    assert checked >= 3
    benchmark(lambda: process_breakdown(trace))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_fig8_breakdown.py`)
# ---------------------------------------------------------------------------
from functools import lru_cache  # noqa: E402

from repro.perf import benchmark as perf_bench  # noqa: E402


@lru_cache(maxsize=1)
def _breakdown_trace():
    kernel, facility, _ = run_sdet(2, scripts_per_cpu=1,
                                   commands_per_script=4)
    return kernel, facility.decode()


@perf_bench("breakdown.process_table", quick=True, tolerance=0.4)
def hb_process_table(b):
    kernel, trace = _breakdown_trace()
    sym = kernel.symbols()
    bds = b(lambda: process_breakdown(trace, sym.syscall_names,
                                      sym.process_names, FS_FUNCTION_NAMES))
    assert bds
    b.note("processes", len(bds))


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
