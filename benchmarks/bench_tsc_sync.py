"""§4.1: TSC interpolation for per-CPU clock synchronization.

Paper mechanism: on x86, LTT logs the cheap per-CPU tsc with each event
and takes one expensive gettimeofday at trace start and one at end;
interpolating between them puts all CPUs' events on a common axis.

Reproduction: per-CPU clocks with realistic offsets and ppm-level
frequency drift; measure cross-CPU skew raw vs interpolated, and verify
a multi-CPU event stream merges into correct global order only after
interpolation.
"""

import pytest

from _benchutil import write_result
from repro.core.timestamps import DriftingTscClock
from repro.ltt import TscInterpolator, max_pairwise_skew, take_anchors

RUN_NS = 2 * 10**9  # a 2-second trace window
NCPUS = 4


@pytest.fixture(scope="module")
def drifting_setup():
    base = [0]
    clock = DriftingTscClock(
        offsets=[0, 1_500_000, 73_000_000, 9_999],
        rates=[1.0, 1.00021, 0.99979, 1.00005],   # ~200 ppm spread
        base=lambda: base[0],
    )
    anchors = take_anchors(clock, 0, RUN_NS)
    return clock, base, TscInterpolator(anchors)


def test_tsc_sync_skew(benchmark, drifting_setup):
    clock, base, interp = drifting_setup
    points = list(range(0, RUN_NS, RUN_NS // 50))
    raw_skews = []
    for t in points:
        vals = [int(clock.offsets[c] + clock.rates[c] * t)
                for c in range(NCPUS)]
        raw_skews.append(max(vals) - min(vals))
    corrected = max_pairwise_skew(interp, clock, points)
    lines = [
        "cross-CPU timestamp skew over a 2 s window",
        f"raw tsc skew:          {min(raw_skews):,} .. {max(raw_skews):,} ns",
        f"after interpolation:   <= {corrected} ns",
        "",
        "paper: two gettimeofday anchors + per-event tsc interpolation",
        "synchronize per-CPU buffers on x86.",
    ]
    write_result("tsc_sync", "\n".join(lines))
    assert max(raw_skews) > 100_000, "drift must be a real problem"
    assert corrected <= 4, "interpolation must reduce skew to rounding"
    benchmark(lambda: max_pairwise_skew(interp, clock, points[:10]))


def test_tsc_sync_restores_event_order(benchmark, drifting_setup):
    """Events generated in a known global order across CPUs must merge
    back into that order after interpolation — and generally not before."""
    clock, base, interp = drifting_setup
    true_order = []
    stamped = []
    t = 1000
    k = 0
    while t < RUN_NS:
        cpu = k % NCPUS
        tsc = int(clock.offsets[cpu] + clock.rates[cpu] * t)
        stamped.append((cpu, tsc, k))
        true_order.append(k)
        k += 1
        t += RUN_NS // 997

    raw_sorted = [i for _, _, i in sorted(stamped, key=lambda x: x[1])]
    assert raw_sorted != true_order, "raw tsc order must be scrambled"

    corrected = sorted(stamped, key=lambda x: interp.to_wall(x[0], x[1]))
    assert [i for _, _, i in corrected] == true_order
    benchmark(lambda: sorted(stamped,
                             key=lambda x: interp.to_wall(x[0], x[1])))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_tsc_sync.py`)
# ---------------------------------------------------------------------------
from functools import lru_cache  # noqa: E402

from repro.perf import benchmark as perf_bench  # noqa: E402


@lru_cache(maxsize=1)
def _interp_setup():
    base = [0]
    clock = DriftingTscClock(
        offsets=[0, 1_500_000, 73_000_000, 9_999],
        rates=[1.0, 1.00021, 0.99979, 1.00005],
        base=lambda: base[0],
    )
    interp = TscInterpolator(take_anchors(clock, 0, RUN_NS))
    stamped = []
    t = 1000
    k = 0
    while t < RUN_NS:
        cpu = k % NCPUS
        stamped.append((cpu, int(clock.offsets[cpu] + clock.rates[cpu] * t), k))
        k += 1
        t += RUN_NS // 997
    return clock, interp, stamped


@perf_bench("tsc.pairwise_skew", quick=True)
def hb_pairwise_skew(b):
    clock, interp, _ = _interp_setup()
    points = list(range(0, RUN_NS, RUN_NS // 50))[:10]
    skew = b(lambda: max_pairwise_skew(interp, clock, points))
    assert skew <= 4


@perf_bench("tsc.merge_sort_corrected", quick=True)
def hb_merge_sort(b):
    """Global-order merge of per-CPU events through interpolation."""
    clock, interp, stamped = _interp_setup()
    merged = b(lambda: sorted(
        stamped, key=lambda x: interp.to_wall(x[0], x[1])))
    assert [i for _, _, i in merged] == list(range(len(stamped)))


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
