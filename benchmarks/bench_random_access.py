"""§3.2: random access into a variable-length event stream.

Paper mechanism: events never cross medium-scale alignment boundaries,
so "trace analysis tools can skip to any of the alignment points in a
large trace and can begin interpreting events from that point" — the
middle 5 seconds of a multi-gigabyte trace without scanning it all.

Reproduction: build a large multi-buffer trace, then (a) verify decoding
from every alignment boundary yields exactly the sequential decode's
suffix, (b) measure the speedup of fetching a middle window via frame
seek vs scanning the whole file.
"""

import io
import time

import numpy as np
import pytest

from _benchutil import write_result
from repro.core.buffers import TraceControl
from repro.core.logger import TraceLogger
from repro.core.majors import Major
from repro.core.mask import TraceMask
from repro.core.registry import default_registry
from repro.core.stream import TraceReader, decode_from_offset, flat_records
from repro.core.timestamps import ManualClock

BW = 256


@pytest.fixture(scope="module")
def big_trace():
    control = TraceControl(buffer_words=BW, num_buffers=64)
    mask = TraceMask()
    mask.enable_all()
    clock = ManualClock()
    logger = TraceLogger(control, mask, clock, registry=default_registry())
    logger.start()
    rng = np.random.default_rng(11)
    for i in range(12_000):
        clock.advance(3)
        n = int(rng.integers(0, 5))
        logger.log_words(Major.TEST, 1, [i] * n)
    records = [r for r in control.flush() if not r.partial]
    flat = np.concatenate([r.words for r in records])
    return records, flat


def test_every_boundary_is_a_valid_entry_point(benchmark, big_trace):
    records, flat = big_trace
    reader = TraceReader(registry=default_registry(), check_committed=False)
    seq_events = reader.decode_records(flat_records(flat, BW)).events(0)
    n_buffers = len(flat) // BW
    for k in range(0, n_buffers, 7):
        sub = decode_from_offset(flat, BW, k * BW + 13,
                                 registry=default_registry())
        got = sub.events(0)
        expect = [e for e in seq_events if e.seq >= k]
        assert [(e.seq, e.offset, tuple(e.data)) for e in got] == \
            [(e.seq, e.offset, tuple(e.data)) for e in expect], f"boundary {k}"
    write_result(
        "random_access_correctness",
        f"{n_buffers} alignment boundaries in a "
        f"{len(flat) * 8 // 1024} KiB trace; decoding from every "
        "boundary reproduces the sequential suffix exactly",
    )
    benchmark(lambda: decode_from_offset(flat, BW, (n_buffers // 2) * BW,
                                         registry=default_registry()))


def test_seek_vs_scan_speed(benchmark, big_trace):
    """Fetching a middle window: boundary seek vs full sequential decode.

    Without the alignment guarantee, variable-length events force a
    reader to decode from the very beginning to find event boundaries;
    with it, the reader lands on the window's boundary directly.  This
    is the exact trade §3.2 resolves.
    """
    records, flat = big_trace
    n_buffers = len(flat) // BW
    window_start = (n_buffers // 2) * BW

    reader = TraceReader(registry=default_registry(), check_committed=False)

    def fetch_window_seek():
        chunk = flat[window_start : window_start + 3 * BW]
        recs = flat_records(chunk, BW, start_seq=n_buffers // 2)
        return reader.decode_records(recs).events(0)

    def fetch_window_scan():
        # No random access: decode the entire stream from offset 0.
        full = decode_from_offset(flat, BW, 0, registry=default_registry())
        return [e for e in full.events(0)
                if n_buffers // 2 <= e.seq < n_buffers // 2 + 3]

    t0 = time.perf_counter()
    for _ in range(5):
        a = fetch_window_seek()
    t_seek = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(5):
        b = fetch_window_scan()
    t_scan = time.perf_counter() - t0

    assert [(e.seq, e.offset) for e in a] == [(e.seq, e.offset) for e in b]
    speedup = t_scan / t_seek
    write_result(
        "random_access_speed",
        f"fetch 3 middle buffers of {n_buffers}: "
        f"boundary seek {t_seek / 5 * 1e3:.2f} ms, "
        f"sequential scan {t_scan / 5 * 1e3:.2f} ms -> "
        f"{speedup:.1f}x speedup\n"
        "(grows with trace size; the paper's traces reached gigabytes "
        "per processor)",
    )
    assert speedup > 1.5
    benchmark(fetch_window_seek)


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_random_access.py`)
# ---------------------------------------------------------------------------
from functools import lru_cache  # noqa: E402

from repro.perf import benchmark as perf_bench  # noqa: E402


@lru_cache(maxsize=1)
def _flat_trace(quick):
    control = TraceControl(buffer_words=BW, num_buffers=64)
    mask = TraceMask()
    mask.enable_all()
    clock = ManualClock()
    logger = TraceLogger(control, mask, clock, registry=default_registry())
    logger.start()
    rng = np.random.default_rng(11)
    for i in range(3_000 if quick else 12_000):
        clock.advance(3)
        n = int(rng.integers(0, 5))
        logger.log_words(Major.TEST, 1, [i] * n)
    records = [r for r in control.flush() if not r.partial]
    return np.concatenate([r.words for r in records])


@perf_bench("random_access.seek_window", quick=True)
def hb_seek_window(b):
    """Fetch 3 middle buffers via the alignment-boundary seek (§3.2)."""
    flat = _flat_trace(b.quick)
    n_buffers = len(flat) // BW
    window_start = (n_buffers // 2) * BW
    reader = TraceReader(registry=default_registry(), check_committed=False)

    def fetch():
        chunk = flat[window_start:window_start + 3 * BW]
        recs = flat_records(chunk, BW, start_seq=n_buffers // 2)
        return reader.decode_records(recs).events(0)

    events = b(fetch)
    assert events
    b.note("buffers_total", n_buffers)


@perf_bench("random_access.full_scan", tolerance=0.4)
def hb_full_scan(b):
    """The no-random-access alternative: decode from offset 0."""
    flat = _flat_trace(b.quick)
    trace = b(lambda: decode_from_offset(flat, BW, 0,
                                         registry=default_registry()))
    assert trace.events(0)


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
