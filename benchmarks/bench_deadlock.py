"""§4.2: correctness debugging — deadlock found by trace post-processing.

Paper anecdote: a file-system deadlock was tracked down by producing a
trace file and post-processing it to detect where the cycle had
occurred; printf would have been too clumsy and would have masked the
bug by changing the timing.

Reproduction: an ABBA deadlock between two simulated file-system
services; the wait-for cycle is recovered purely from the trace.  The
"printf masks the bug" point is reproduced too: adding a large printf
delay to one path changes the interleaving so the deadlock no longer
manifests — while the always-on cheap tracing caught it.
"""


from _benchutil import write_result
from repro.core.facility import TraceFacility
from repro.ksim import Acquire, Compute, Kernel, KernelConfig, Release
from repro.tools.deadlock import find_deadlocks

PRINTF_COST = 500_000  # cycles: console output is enormous vs tracing


def build_kernel():
    kernel = Kernel(KernelConfig(ncpus=2, trace_all_lock_events=True))
    facility = TraceFacility(ncpus=2, clock=kernel.clock,
                             buffer_words=1024, num_buffers=8)
    facility.enable_all()
    kernel.facility = facility
    return kernel, facility


def run_scenario(printf_instrumented: bool):
    kernel, facility = build_kernel()
    dentry = kernel.create_lock("DentryListHash")
    inode = kernel.create_lock("InodeTable")

    def rename_path(api):
        if printf_instrumented:
            # The developer added a printf at the top of the handler; it
            # stalls this path so long that unlink completes before
            # rename takes any lock — the race window closes.
            yield Compute(PRINTF_COST, pc="printf")
        yield Acquire(dentry, ("DirLinuxFS::rename",))
        yield Compute(40_000, pc="DirLinuxFS::rename")
        yield Acquire(inode, ("DirLinuxFS::rename",))
        yield Release(inode)
        yield Release(dentry)

    def unlink_path(api):
        yield Compute(10_000, pc="user_delay")
        yield Acquire(inode, ("DirLinuxFS::unlink",))
        yield Compute(40_000, pc="DirLinuxFS::unlink")
        yield Acquire(dentry, ("DirLinuxFS::unlink",))
        yield Release(dentry)
        yield Release(inode)

    kernel.spawn_process(rename_path, "renameService", cpu=0)
    kernel.spawn_process(unlink_path, "unlinkService", cpu=1)
    finished = kernel.run_until_quiescent(max_cycles=10**8)
    return kernel, facility, finished


def test_deadlock_found_from_trace(benchmark):
    kernel, facility, finished = run_scenario(printf_instrumented=False)
    assert not finished, "the scenario must deadlock"
    trace = facility.decode()
    report = find_deadlocks(trace)
    assert report.deadlocked
    desc = report.describe(lock_names=kernel.symbols().lock_names)
    write_result("deadlock_detection", desc)
    assert "DentryListHash" in desc and "InodeTable" in desc
    benchmark(lambda: find_deadlocks(trace))


def test_printf_masks_the_deadlock(benchmark):
    """The same system 'debugged' with printf runs to completion — the
    Heisenbug effect the paper warns about; low-overhead tracing is the
    reason the real bug stayed observable."""
    kernel, facility, finished = run_scenario(printf_instrumented=True)
    write_result(
        "deadlock_printf_masking",
        f"with a printf on the rename path: run quiesced = {finished}\n"
        "the timing change hides the deadlock, exactly as §4.2 warns",
    )
    assert finished, "printf delay must perturb the race away"
    trace = facility.decode()
    assert not find_deadlocks(trace).deadlocked
    benchmark(lambda: find_deadlocks(trace))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_deadlock.py`)
# ---------------------------------------------------------------------------
from functools import lru_cache  # noqa: E402

from repro.perf import benchmark as perf_bench  # noqa: E402


@lru_cache(maxsize=1)
def _deadlocked_trace():
    kernel, facility, finished = run_scenario(printf_instrumented=False)
    assert not finished
    return kernel, facility.decode()


@perf_bench("deadlock.find_cycle", quick=True)
def hb_find_cycle(b):
    """Wait-for-cycle detection over the deadlocked trace (§4.2)."""
    kernel, trace = _deadlocked_trace()
    report = b(lambda: find_deadlocks(trace))
    assert report.deadlocked
    write_result("deadlock_detection",
                 report.describe(lock_names=kernel.symbols().lock_names))


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
