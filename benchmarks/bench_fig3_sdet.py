"""Figure 3: SPEC SDET throughput scaling, K42 (traced) vs Linux-like.

Paper result: K42's curve, measured *with the tracing infrastructure
compiled in*, scales near-linearly with processors while the Linux
baseline flattens; leaving the infrastructure compiled in but inactive
costs under 1%.

Reproduction: the SDET-like workload on the simulated multiprocessor,
fine-grained (K42) vs coarse-locked (Linux-like) kernel configurations,
with the tracing-mode overhead measured deterministically on one CPU.
"""

import pytest

from _benchutil import write_result
from repro.workloads import run_sdet

CPU_POINTS = [1, 2, 4, 8, 16, 24]


@pytest.fixture(scope="module")
def scaling_table():
    rows = []
    for ncpus in CPU_POINTS:
        _, _, fine = run_sdet(ncpus, scripts_per_cpu=2, tracing="on")
        _, _, coarse = run_sdet(ncpus, scripts_per_cpu=2, tracing="on",
                                coarse_locked=True)
        rows.append((ncpus, fine.throughput, coarse.throughput))
    return rows


@pytest.fixture(scope="module")
def overhead_table():
    rows = []
    for mode in ("off", "masked", "on"):
        _, _, res = run_sdet(1, scripts_per_cpu=4, commands_per_script=6,
                             tracing=mode, seed=7)
        rows.append((mode, res.elapsed_cycles, res.trace_events))
    return rows


def test_fig3_scaling_shape(benchmark, scaling_table):
    """K42 config scales near-linearly; coarse config flattens."""
    benchmark(lambda: run_sdet(4, scripts_per_cpu=1, commands_per_script=3))
    text = ["SDET throughput (scripts/hour simulated)",
            f"{'CPUs':>5} {'K42(traced)':>13} {'coarse':>13} {'ratio':>7}"]
    base_fine = scaling_table[0][1]
    base_coarse = scaling_table[0][2]
    for ncpus, fine, coarse in scaling_table:
        text.append(f"{ncpus:>5} {fine:>13.0f} {coarse:>13.0f} "
                    f"{fine / coarse:>6.2f}x")
    fine24 = scaling_table[-1][1]
    coarse24 = scaling_table[-1][2]
    text.append("")
    text.append(f"speedup at 24 CPUs: K42 {fine24 / base_fine:.1f}x, "
                f"coarse {coarse24 / base_coarse:.1f}x")
    write_result("fig3_sdet_scaling", "\n".join(text))

    # Shape assertions: the paper's qualitative result.
    fine_speedup = fine24 / base_fine
    coarse_speedup = coarse24 / base_coarse
    assert fine_speedup > 8, "K42 config must keep scaling"
    assert coarse_speedup < 0.6 * fine_speedup, "coarse config must flatten"
    assert fine24 > 2 * coarse24, "K42 clearly wins at 24 CPUs"


def test_fig3_tracing_overhead(benchmark, overhead_table):
    """Compiled-in-but-masked < 1%; enabled low single digits."""
    benchmark(
        lambda: run_sdet(1, scripts_per_cpu=1, commands_per_script=2,
                         tracing="on")
    )
    base = overhead_table[0][1]
    text = ["tracing overhead, 1 CPU (deterministic)"]
    pct = {}
    for mode, cycles, events in overhead_table:
        pct[mode] = (cycles / base - 1) * 100
        text.append(f"{mode:>7}: {cycles:>13,} cycles {pct[mode]:+.3f}% "
                    f"({events} events)")
    text.append("")
    text.append("paper: <1% with statements compiled in; low impact enabled")
    write_result("fig3_tracing_overhead", "\n".join(text))

    assert 0 <= pct["masked"] < 1.0, "mask-check overhead must be <1%"
    assert pct["on"] < 6.0, "enabled tracing must stay low-impact"


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_fig3_sdet.py`)
# ---------------------------------------------------------------------------
from repro.perf import benchmark as perf_bench  # noqa: E402


@perf_bench("sdet.run_traced", quick=True, tolerance=0.4)
def hb_run_traced(b):
    """One SDET simulation with tracing on — the Figure 3 kernel."""
    if b.quick:
        b.note("config", "2 cpus x 1 script x 3 commands")
        b(lambda: run_sdet(2, scripts_per_cpu=1, commands_per_script=3))
    else:
        b.note("config", "4 cpus x 2 scripts x 4 commands")
        b(lambda: run_sdet(4, scripts_per_cpu=2, commands_per_script=4))


@perf_bench("sdet.run_coarse_locked", tolerance=0.4)
def hb_run_coarse(b):
    """The Linux-like coarse-locked configuration of the same workload."""
    b(lambda: run_sdet(2, scripts_per_cpu=1, commands_per_script=3,
                       coarse_locked=True))


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
