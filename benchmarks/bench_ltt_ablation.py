"""§4.1: the order-of-magnitude LTT improvement, ablated.

Paper result: applying K42's technology to the Linux Trace Toolkit —
lockless logging, per-processor buffers, more efficient timestamp
acquisition — yielded an order of magnitude performance improvement.

Two reproductions:

1. **Simulated machine (primary).**  Each configuration's per-event cost
   is expressed in the paper's own cycle vocabulary (91 + 11/word for
   the event write, ~1200 cycles for a gettimeofday-class timestamp,
   ~400 cycles for irq-disable + lock bookkeeping) and run on the
   discrete-event multiprocessor, where a shared buffer really
   serializes CPUs through one lock.  This preserves the era-relative
   ratios the paper measured.

2. **Real threads (secondary).**  The actual Python loggers hammered by
   one thread per CPU, with the locking/timestamp penalties calibrated
   as the same *multiples* of this implementation's base event cost.
   CPython's GIL prevents true parallel logging, so this measures the
   synchronization/timestamp ablation only; ratios are smaller but the
   ordering must match.
"""

import threading
import time

import pytest

from _benchutil import write_result
from repro.core.majors import Major
from repro.ksim import Acquire, Compute, Kernel, KernelConfig, Release
from repro.ltt import LTT_CONFIGS, build_logger_set

NCPUS = 4

# Paper-era per-event cycle components.
EVENT_WRITE = 91 + 11          # 1 data word
CHEAP_TS = 10                  # synchronized timebase read
EXPENSIVE_TS = 1_200           # gettimeofday-class call
IRQ_AND_LOCK = 400             # irq disable/enable + lock bookkeeping


def config_event_cycles(config) -> int:
    cost = EVENT_WRITE
    cost += CHEAP_TS if config.cheap_timestamps else EXPENSIVE_TS
    if not config.lockless:
        cost += IRQ_AND_LOCK
    return cost


def simulate_config(config, ncpus=NCPUS, events_per_cpu=400) -> float:
    """Events per simulated second for one configuration."""
    kernel = Kernel(KernelConfig(ncpus=ncpus, migration=False))
    per_cpu_locks = [kernel.create_lock(f"trace_buf{c}") for c in range(ncpus)]
    shared_lock = kernel.create_lock("trace_buf_shared")
    cycles = config_event_cycles(config)

    def writer(cpu):
        def program(api):
            for _ in range(events_per_cpu):
                if config.lockless:
                    yield Compute(cycles, pc="traceLog")
                else:
                    lock = (per_cpu_locks[cpu] if config.per_cpu_buffers
                            else shared_lock)
                    yield Acquire(lock, ("ltt_log_event",))
                    yield Compute(cycles, pc="ltt_log_event")
                    yield Release(lock)
        return program

    for cpu in range(ncpus):
        kernel.spawn_process(writer(cpu), f"writer{cpu}", cpu=cpu)
    assert kernel.run_until_quiescent(10**12)
    seconds = kernel.engine.now / 1e9
    return ncpus * events_per_cpu / seconds


def hammer(config, per_thread=3_000, ncpus=NCPUS):
    """Real-thread aggregate events/sec (secondary measurement).

    Penalties calibrated against this implementation's ~µs-scale base
    event cost: the expensive timestamp and irq-disable spins are the
    same multiples of the base cost as their cycle counterparts above.
    """
    ls = build_logger_set(config, ncpus=ncpus, buffer_words=4096,
                          num_buffers=8, irq_disable_iters=400,
                          expensive_ts_iters=1_200)
    barrier = threading.Barrier(ncpus + 1)

    def work(cpu):
        logger = ls.loggers[cpu]
        barrier.wait()
        for i in range(per_thread):
            logger.log2(Major.TEST, 2, cpu, i)

    threads = [threading.Thread(target=work, args=(c,)) for c in range(ncpus)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    return ncpus * per_thread / (time.perf_counter() - t0)


@pytest.fixture(scope="module")
def simulated_rows():
    return [(c.name, simulate_config(c)) for c in LTT_CONFIGS]


@pytest.fixture(scope="module")
def wallclock_rows():
    return [(c.name, max(hammer(c, per_thread=2_000) for _ in range(3)))
            for c in LTT_CONFIGS]


def test_ltt_ablation_simulated(benchmark, simulated_rows):
    base = simulated_rows[0][1]
    lines = [f"LTT ablation on the simulated {NCPUS}-CPU machine "
             "(events per simulated second)",
             f"{'configuration':>14} {'events/sec':>16} {'vs original':>12}"]
    for name, rate in simulated_rows:
        lines.append(f"{name:>14} {rate:>16,.0f} {rate / base:>11.1f}x")
    k42 = simulated_rows[-1][1]
    lines.append("")
    lines.append(f"k42/original: {k42 / base:.1f}x "
                 "(paper: 'an order of magnitude')")
    write_result("ltt_ablation_simulated", "\n".join(lines))

    rates = [r for _, r in simulated_rows]
    assert rates == sorted(rates), "each factor must help"
    assert k42 / base >= 10, "the full stack must reach an order of magnitude"
    benchmark(lambda: simulate_config(LTT_CONFIGS[-1], events_per_cpu=100))


def test_ltt_ablation_wallclock(benchmark, wallclock_rows):
    base = wallclock_rows[0][1]
    lines = [f"LTT ablation with real Python threads ({NCPUS} threads; "
             "GIL limits parallel gains)",
             f"{'configuration':>14} {'events/sec':>14} {'vs original':>12}"]
    for name, rate in wallclock_rows:
        lines.append(f"{name:>14} {rate:>14,.0f} {rate / base:>11.1f}x")
    write_result("ltt_ablation_wallclock", "\n".join(lines))

    rows = dict(wallclock_rows)
    assert rows["k42"] == max(rows.values())
    assert rows["k42"] / rows["original"] >= 3.0
    benchmark(lambda: hammer(LTT_CONFIGS[-1], per_thread=300))


def test_shared_buffer_serializes_simulated_cpus(benchmark, simulated_rows):
    """Per-CPU buffers alone must help on the simulated machine, where
    CPUs genuinely run in parallel and a shared lock serializes them."""
    rows = dict(simulated_rows)
    assert rows["+percpu"] > rows["original"] * 1.5
    benchmark(lambda: simulate_config(LTT_CONFIGS[1], events_per_cpu=100))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_ltt_ablation.py`)
# ---------------------------------------------------------------------------
from repro.perf import benchmark as perf_bench  # noqa: E402


@perf_bench("ltt.simulate_k42", quick=True, tolerance=0.4)
def hb_simulate_k42(b):
    """Simulated-machine event throughput of the full K42 configuration."""
    events = 100 if b.quick else 400
    b.note("events_per_cpu", events)
    rate = b(lambda: simulate_config(LTT_CONFIGS[-1],
                                     events_per_cpu=events))
    assert rate > 0
    b.note("events_per_sim_second", rate)


@perf_bench("ltt.hammer_k42", tolerance=0.75)
def hb_hammer_k42(b):
    """Real-thread logging throughput (GIL-bound; noisy by nature)."""
    rate = b(lambda: hammer(LTT_CONFIGS[-1], per_thread=300))
    b.note("events_per_second", rate)


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
