"""Server-style workload: worker scaling and queue-lock behaviour.

K42's OS services are multi-threaded server processes (Figure 8 lists
baseServers' thread entry points).  This bench runs the client/server
workload and measures the two relationships a server architect tunes
with exactly these traces:

* request latency vs worker count (queueing theory made visible);
* contention on the shared request-queue lock as workers multiply —
  the next Figure 7 entry once the allocator is fixed.
"""

import pytest

from _benchutil import write_result
from repro.tools.lockstats import lock_statistics
from repro.workloads.server import run_server


@pytest.fixture(scope="module")
def worker_sweep():
    rows = []
    for nworkers in (1, 2, 4, 8):
        kernel, facility, result = run_server(
            ncpus=4, nworkers=nworkers, nclients=6,
            requests_per_client=8,
        )
        trace = facility.decode()
        queue_lock = next(l for l in kernel.locks
                          if l.name == "Server::requestQueue")
        rows.append((nworkers, result, queue_lock.contentions))
    return rows


def test_latency_falls_with_workers(benchmark, worker_sweep):
    lines = ["server worker sweep (6 clients x 8 requests, 4 CPUs)",
             f"{'workers':>8} {'mean latency us':>16} {'max us':>10} "
             f"{'elapsed us':>11} {'queue-lock contentions':>23}"]
    for nworkers, result, contentions in worker_sweep:
        lines.append(
            f"{nworkers:>8} {result.mean_latency / 1e3:>16.1f} "
            f"{result.max_latency / 1e3:>10.1f} "
            f"{result.elapsed_cycles / 1e3:>11.1f} {contentions:>23}"
        )
    write_result("server_worker_sweep", "\n".join(lines))
    lat = {n: r.mean_latency for n, r, _ in worker_sweep}
    assert lat[4] < lat[1], "more workers must cut queueing latency"
    done = {n: r.requests_completed for n, r, _ in worker_sweep}
    assert all(v == 48 for v in done.values())
    benchmark(lambda: run_server(ncpus=2, nworkers=2, nclients=2,
                                 requests_per_client=3))


def test_queue_lock_visible_in_fig7_view(benchmark, worker_sweep):
    """At high worker counts the request-queue lock shows up in the
    lock-analysis table — the §4 iteration's next target."""
    kernel, facility, result = run_server(
        ncpus=4, nworkers=8, nclients=6, requests_per_client=8,
    )
    trace = facility.decode()
    stats = lock_statistics(trace, group_by_pid=False)
    names = [kernel.symbols().lock_names.get(s.lock_id, "") for s in stats]
    assert any("requestQueue" in n for n in names)
    benchmark(lambda: lock_statistics(trace))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_server.py`)
# ---------------------------------------------------------------------------
from repro.perf import benchmark as perf_bench  # noqa: E402


@perf_bench("server.request_round", quick=True, tolerance=0.4)
def hb_request_round(b):
    """One client/server simulation round (queueing behaviour kernel)."""
    _, _, result = b(lambda: run_server(ncpus=2, nworkers=2, nclients=2,
                                        requests_per_client=3))
    assert result.requests_completed == 6
    b.note("mean_latency_cycles", result.mean_latency)


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
