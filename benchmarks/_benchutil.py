"""Shared helpers for the reproduction benchmarks.

Every ``bench_figN_*``/``bench_*`` module regenerates one table or
figure from the paper's evaluation.  Each writes its human-readable
reproduction table to ``benchmarks/results/<name>.txt`` (and prints it,
visible with ``pytest -s``), while pytest-benchmark times a
representative kernel of the experiment.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n[written to {path}]")
    return path


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
