"""Back-compat shim for the reproduction benchmarks.

The timing/report helpers that used to live here are now part of the
unified harness (``repro.perf``); this module re-exports them so every
``bench_*.py`` — and any downstream script that did ``from _benchutil
import write_result`` — keeps working unchanged.  Narrative ``.txt``
tables under ``benchmarks/results/`` are renderings of the harness's
JSON report: under a harness run they are captured into
``BENCH_*.json`` and re-rendered from it; under plain pytest they are
written directly, exactly as before.
"""

from pathlib import Path

import pytest

from repro.perf import report as _report

# All narrative tables land next to the benchmarks, wherever this
# checkout lives.
_report.set_results_dir(Path(__file__).parent / "results")

RESULTS_DIR = _report.RESULTS_DIR
write_result = _report.write_result


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
