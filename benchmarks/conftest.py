"""Make the benchmarks directory importable for its helper module."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
