"""Fleet aggregation: merge throughput and node-pruned store queries.

Two figures for the PR 9 merge layer (``repro.fleet``):

* **merge_throughput** — re-base N per-node traces onto the fleet
  clock and build the unified, node-aware-ordered batch.  The work is
  one vectorized affine map per (node, cpu) stream plus one global
  lexsort, so it should scale like the columnar decode paths.
* **query_node_pruning** — a ``Predicate(nodes=...)`` against a packed
  fleet store: the manifest's per-shard node statistic must let the
  reader skip excluded nodes' shards without opening them.

Both are quick-tier: they gate in CI against the committed baseline.
"""

import tempfile

from repro.core.columnar import ColumnarTraceReader
from repro.core.facility import TraceFacility
from repro.core.registry import default_registry
from repro.core.timestamps import ManualClock
from repro.fleet import (
    NodeAnchors,
    NodeSource,
    merge_traces,
    pack_fleet_view,
)
from repro.perf import benchmark as perf_bench
from repro.store import Predicate, TraceStore


def _node_source(node, n_events, reg):
    """One synthetic node: local clock offset + mild rate skew."""
    offset = 10**9 * (node + 1)
    tick = 5
    clock = ManualClock(start=offset)
    fac = TraceFacility(ncpus=2, buffer_words=1024, num_buffers=64,
                        clock=clock)
    fac.enable_all()
    for i in range(n_events):
        fac.log(i % 2, 2 + (i % 6), i % 16, [i, i * 3][: i % 3])
        clock.advance(tick)
    trace = ColumnarTraceReader(registry=reg).decode_records(fac.flush())
    span = n_events * tick + 100
    return NodeSource(
        node=node, trace=trace,
        anchors=NodeAnchors(
            local_start=offset, wall_start=1000 * node,
            local_end=offset + span,
            wall_end=1000 * node + round(span * (1.0 + 0.003 * node)),
        ))


@perf_bench("fleet.merge_throughput", quick=True, tolerance=0.4)
def hb_merge_throughput(b):
    """Merge 4 node traces: per-stream rebase + node-aware global sort."""
    n_events = 4_000 if b.quick else 25_000
    reg = default_registry()
    sources = [_node_source(n, n_events, reg) for n in range(4)]

    def kernel():
        view = merge_traces(sources, registry=reg)
        batch = view.batch()
        assert batch.node is not None
        return batch

    batch = b(kernel)
    b.note("nodes", 4)
    b.note("events", len(batch))


@perf_bench("fleet.query_node_pruning", quick=True, tolerance=0.4)
def hb_query_node_pruning(b):
    """Cold node-restricted query: open manifest, read one node's
    shards, skip every other node's without opening them."""
    n_events = 4_000 if b.quick else 25_000
    reg = default_registry()
    sources = [_node_source(n, n_events, reg) for n in range(4)]
    view = merge_traces(sources, registry=reg)
    with tempfile.TemporaryDirectory() as d:
        store_dir = d + "/fleet.store"
        pack_fleet_view(view, store_dir, shard_events=1024)

        def kernel():
            store = TraceStore(store_dir, registry=reg)
            qr = store.query(Predicate(nodes=(2,)))
            assert qr.shards_pruned > 0
            return qr

        qr = b(kernel)
    b.note("matched", len(qr))
    b.note("shards_read", qr.shards_read)
    b.note("shards_total", qr.shards_total)


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
