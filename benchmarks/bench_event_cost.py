"""§3.2 "Efficiency of the Implementation": per-event logging costs.

Paper numbers (PowerPC, 1 GHz): mask check = 4 instructions; a 1-word
event = 91 cycles (~100 ns) + 11 cycles per additional word; the
hand-optimized assembler path = ~30 instructions; trace statements left
in during benchmarking cost <1%.

Reproduction, two layers:

* the **cost model** the simulator charges reproduces the paper's
  numbers exactly (asserted);
* **wall-clock microbenchmarks** of this Python implementation measure
  the real ns/event for masked-off, 1-word, and multi-word events, and
  the per-additional-word increment — the honest equivalent table.
"""


from _benchutil import write_result
from repro.core.buffers import TraceControl
from repro.core.logger import NullTraceLogger, TraceLogger
from repro.core.majors import Major
from repro.core.mask import TraceMask
from repro.core.timestamps import WallClock
from repro.ksim.costs import DEFAULT_COSTS


def make_logger(enabled=True, buffer_words=16 * 1024, num_buffers=8):
    control = TraceControl(buffer_words=buffer_words, num_buffers=num_buffers,
                           max_pending=4)
    mask = TraceMask()
    if enabled:
        mask.enable_all()
    else:
        mask.enable(Major.CONTROL)
    logger = TraceLogger(control, mask, WallClock())
    logger.start()
    return logger


def test_cost_model_reproduces_paper_numbers(benchmark):
    """The simulator charges exactly the §3.2 costs."""
    c = DEFAULT_COSTS
    assert c.trace_mask_check == 4
    assert c.trace_event_cost(1) == 91 + 11
    assert c.trace_event_cost(0) == 91
    assert c.trace_event_cost(4) == 91 + 44
    assert c.trace_event_cost(1, asm_path=True) == 30 + 11
    rows = ["simulator cost model vs paper (§3.2)",
            f"mask check:        {c.trace_mask_check} insns (paper: 4)",
            f"1-word event:      {c.trace_event_cost(0)} cycles (paper: 91)",
            f"per extra word:    {c.trace_event_per_word} cycles (paper: 11)",
            f"asm path + 1 word: {c.trace_event_cost(1, asm_path=True)} "
            f"cycles (paper: ~30 insns + data)"]
    write_result("event_cost_model", "\n".join(rows))
    benchmark(lambda: c.trace_event_cost(3))


def test_bench_masked_off_event(benchmark):
    """The 'compiled in but disabled' fast path: one mask comparison."""
    logger = make_logger(enabled=False)
    result = benchmark(lambda: logger.log1(Major.TEST, 1, 42))
    assert logger.log1(Major.TEST, 1, 42) is False


def test_bench_compiled_out_event(benchmark):
    """Goal 6's zero-impact configuration."""
    logger = NullTraceLogger()
    benchmark(lambda: logger.log1(Major.TEST, 1, 42))


def test_bench_one_word_event(benchmark):
    logger = make_logger()
    benchmark(lambda: logger.log1(Major.TEST, 1, 42))


def test_bench_three_word_event(benchmark):
    logger = make_logger()
    benchmark(lambda: logger.log3(Major.TEST, 1, 1, 2, 3))


def test_bench_eight_word_event(benchmark):
    logger = make_logger()
    data = list(range(8))
    benchmark(lambda: logger.log_words(Major.TEST, 1, data))


def test_per_word_increment_table(benchmark):
    """Measure ns/event as a function of data words; report the slope
    (the analogue of the paper's 11 cycles/word)."""
    import time

    logger = make_logger()
    n = 20_000
    results = []
    for words in (0, 1, 2, 4, 8, 16):
        data = list(range(words))
        t0 = time.perf_counter()
        for _ in range(n):
            logger.log_words(Major.TEST, 1, data)
        dt = time.perf_counter() - t0
        results.append((words, dt / n * 1e9))
    slope = (results[-1][1] - results[0][1]) / 16
    lines = ["wall-clock event cost (this Python implementation)",
             f"{'data words':>10} {'ns/event':>10}"]
    for words, ns in results:
        lines.append(f"{words:>10} {ns:>10.0f}")
    lines.append(f"per-additional-word increment: ~{slope:.0f} ns "
                 "(paper: 11 cycles = 11 ns at 1 GHz)")
    write_result("event_cost_wallclock", "\n".join(lines))
    assert results[0][1] < 100_000  # sanity: not absurdly slow
    benchmark(lambda: logger.log1(Major.TEST, 1, 7))


def test_mask_check_much_cheaper_than_logging(benchmark):
    """The design point: the disabled path must be dramatically cheaper
    than actually logging, which is what lets statements stay in."""
    import time

    on = make_logger(enabled=True)
    off = make_logger(enabled=False)
    n = 30_000

    t0 = time.perf_counter()
    for _ in range(n):
        off.log1(Major.TEST, 1, 1)
    t_off = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(n):
        on.log1(Major.TEST, 1, 1)
    t_on = time.perf_counter() - t0

    ratio = t_on / t_off
    write_result(
        "mask_vs_log_ratio",
        f"disabled path: {t_off / n * 1e9:.0f} ns/event\n"
        f"enabled path:  {t_on / n * 1e9:.0f} ns/event\n"
        f"ratio: {ratio:.1f}x (paper: 4 insns vs 70-80 insns ≈ 20x)",
    )
    assert ratio > 3, "disabled path must be much cheaper"
    benchmark(lambda: off.log1(Major.TEST, 1, 1))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_event_cost.py`)
# ---------------------------------------------------------------------------
from repro.perf import benchmark as perf_bench  # noqa: E402


@perf_bench("event_cost.cost_model", quick=True)
def hb_cost_model(b):
    c = DEFAULT_COSTS
    assert b(lambda: c.trace_event_cost(3)) == 91 + 33


@perf_bench("event_cost.masked_off", quick=True, tolerance=0.5)
def hb_masked_off(b):
    logger = make_logger(enabled=False)
    assert b(lambda: logger.log1(Major.TEST, 1, 42)) is False


@perf_bench("event_cost.compiled_out", quick=True, tolerance=0.5)
def hb_compiled_out(b):
    logger = NullTraceLogger()
    b(lambda: logger.log1(Major.TEST, 1, 42))


@perf_bench("event_cost.one_word", quick=True, tolerance=0.5)
def hb_one_word(b):
    logger = make_logger()
    b(lambda: logger.log1(Major.TEST, 1, 42))


@perf_bench("event_cost.three_word", quick=True, tolerance=0.5)
def hb_three_word(b):
    logger = make_logger()
    b(lambda: logger.log3(Major.TEST, 1, 1, 2, 3))


@perf_bench("event_cost.eight_word", quick=True, tolerance=0.5)
def hb_eight_word(b):
    logger = make_logger()
    data = list(range(8))
    b(lambda: logger.log_words(Major.TEST, 1, data))


@perf_bench("event_cost.per_word_table", quick=True, tolerance=0.5)
def hb_per_word_table(b):
    """The §3.2 per-additional-word slope, rendered as a narrative table."""
    import time

    logger = make_logger()
    n = 4_000 if b.quick else 20_000
    results = []
    for words in (0, 1, 2, 4, 8, 16):
        data = list(range(words))
        t0 = time.perf_counter()
        for _ in range(n):
            logger.log_words(Major.TEST, 1, data)
        dt = time.perf_counter() - t0
        results.append((words, dt / n * 1e9))
    slope = (results[-1][1] - results[0][1]) / 16
    lines = ["wall-clock event cost (this Python implementation)",
             f"{'data words':>10} {'ns/event':>10}"]
    for words, ns in results:
        lines.append(f"{words:>10} {ns:>10.0f}")
    lines.append(f"per-additional-word increment: ~{slope:.0f} ns "
                 "(paper: 11 cycles = 11 ns at 1 GHz)")
    write_result("event_cost_wallclock", "\n".join(lines))
    b.note("per_word_slope_ns", slope)
    b.note("events_per_point", n)
    b(lambda: logger.log_words(Major.TEST, 1, (1, 2)))


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
