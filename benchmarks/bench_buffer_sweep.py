"""Ablation: the alignment-boundary (buffer) size trade-off (§3.2).

The boundary size is the design's central dial.  Small buffers give
fine-grained random access (seek closer to the instant you want) but pay
more filler waste and more buffer-start bookkeeping; large buffers
amortize overheads but coarsen random access.  K42 chose "medium-scale"
boundaries (~128KB).  This sweep measures both sides of the trade so the
choice is visible in numbers, plus the commit-count on/off ablation the
design calls out (traceCommit is "optional" in Figure 2).
"""

import random
import time


from _benchutil import write_result
from repro.core.buffers import TraceControl
from repro.core.logger import TraceLogger
from repro.core.majors import Major
from repro.core.mask import TraceMask
from repro.core.timestamps import ManualClock

N_EVENTS = 30_000


def fill(buffer_words, commit_counts=True, n_events=None):
    control = TraceControl(buffer_words=buffer_words,
                           num_buffers=max(4, 2**15 // buffer_words),
                           max_pending=8)
    mask = TraceMask()
    mask.enable_all()
    clock = ManualClock()
    logger = TraceLogger(control, mask, clock, commit_counts=commit_counts)
    logger.start()
    rng = random.Random(99)
    sizes = [rng.randint(0, 4) for _ in range(512)]  # aperiodic mix
    payload = (1, 2, 3, 4)
    t0 = time.perf_counter()
    n = N_EVENTS if n_events is None else n_events
    for i in range(n):
        clock.advance(2)
        logger.log_words(Major.TEST, 1, payload[: sizes[i % 512]])
    wall = time.perf_counter() - t0
    return control, wall


def test_buffer_size_sweep(benchmark):
    rows = [
        "alignment-boundary size sweep "
        f"({N_EVENTS} variable-length events)",
        f"{'buffer words':>13} {'filler waste':>13} {'overhead words':>15} "
        f"{'ns/event':>9}",
    ]
    results = {}
    for bw in (64, 256, 1024, 4096, 16384):
        control, wall = fill(bw)
        stats_words = control.stats_words_logged
        waste = control.stats_filler_words / stats_words * 100
        # anchor/bookkeeping overhead: 4 words per buffer started
        anchors = control.stats_buffers_completed * 4
        results[bw] = waste
        rows.append(
            f"{bw:>13} {waste:>12.3f}% {anchors:>15} "
            f"{wall / N_EVENTS * 1e9:>9.0f}"
        )
    rows.append("")
    rows.append("smaller buffers -> finer random access but more waste;")
    rows.append("the curve is why K42 picked medium-scale boundaries")
    write_result("buffer_size_sweep", "\n".join(rows))
    # Waste must shrink monotonically-ish with buffer size.
    assert results[64] > results[16384]
    assert results[16384] < 0.1
    benchmark(lambda: fill(4096))


def test_commit_counts_ablation(benchmark):
    """traceCommit is optional (Figure 2); measure what it costs and
    what turning it off gives up (committed-count garble detection)."""
    t_on = t_off = 0.0
    for _ in range(3):
        _, w_on = fill(4096, commit_counts=True)
        _, w_off = fill(4096, commit_counts=False)
        t_on += w_on
        t_off += w_off
    overhead = (t_on - t_off) / t_off * 100
    write_result(
        "commit_counts_ablation",
        f"traceCommit on:  {t_on / 3 / N_EVENTS * 1e9:.0f} ns/event\n"
        f"traceCommit off: {t_off / 3 / N_EVENTS * 1e9:.0f} ns/event\n"
        f"overhead of the per-buffer counts: {overhead:+.1f}%\n"
        "(what you pay for §3.1's killed-writer detection)",
    )
    # The counts shouldn't dominate: well under 2x.
    assert t_on < t_off * 2
    benchmark(lambda: fill(4096, commit_counts=False))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_buffer_sweep.py`)
# ---------------------------------------------------------------------------
from repro.perf import benchmark as perf_bench  # noqa: E402


@perf_bench("buffers.fill_4096", quick=True, tolerance=0.5)
def hb_fill_4096(b):
    """Log a variable-length event mix into 4096-word buffers."""
    n = 4_000 if b.quick else N_EVENTS
    b.note("n_events", n)
    control, _ = b(lambda: fill(4096, n_events=n))
    assert control.stats_words_logged > 0


@perf_bench("buffers.fill_4096_no_commit", tolerance=0.5)
def hb_fill_no_commit(b):
    """Same fill with the optional commit-count bookkeeping ablated."""
    n = 4_000 if b.quick else N_EVENTS
    b.note("n_events", n)
    b(lambda: fill(4096, commit_counts=False, n_events=n))


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
