"""Figure 7: lock-contention analysis.

Paper artifact: the top contended locks ranked by total wait time, with
count / spin / max-time / pid columns and the call chain per row; the
top entries are the allocator paths (AllocRegionManager::alloc via
GMalloc::gMalloc, PageAllocatorDefault::deallocPages via
AllocPool::largeFree/largeAlloc).  The tool sorts on any column.

Reproduction: the allocator-storm workload, analyzed purely from trace
events, must produce the same ranking vocabulary, with trace-derived
numbers matching the simulator's ground truth.
"""

import pytest

from _benchutil import write_result
from repro.tools.lockstats import format_lockstats, lock_statistics
from repro.workloads import run_contention


@pytest.fixture(scope="module")
def contended_run():
    kernel, facility, result = run_contention(
        ncpus=8, workers_per_cpu=2, iterations=60,
        global_alloc_fraction=0.85, pc_sample_period=0,
    )
    return kernel, facility.decode(), result


def test_fig7_table(benchmark, contended_run):
    kernel, trace, result = contended_run
    sym = kernel.symbols()
    stats = lock_statistics(trace, sort_by="time")
    text = format_lockstats(stats, sym.lock_names, sym.chains, top=10)
    write_result("fig7_lockstats", text)

    assert "GMalloc::gMalloc()" in text
    assert "AllocRegionManager" in text
    top_names = [sym.lock_names.get(s.lock_id, "?") for s in stats[:3]]
    assert any("AllocRegionManager" in n or "PageAllocator" in n
               or "Dentry" in n for n in top_names), top_names
    benchmark(lambda: lock_statistics(trace, sort_by="time"))


def test_fig7_ground_truth_agreement(benchmark, contended_run):
    """Trace-derived totals equal the kernel's own lock counters."""
    kernel, trace, _ = contended_run
    stats = lock_statistics(trace, group_by_pid=False)
    derived = {}
    for s in stats:
        d = derived.setdefault(s.lock_id, [0, 0])
        d[0] += s.count
        d[1] += s.total_wait_cycles
    for lock in kernel.locks:
        got_count, got_wait = derived.get(lock.lock_id, (0, 0))
        assert got_count == lock.contentions, lock.name
        if lock.contentions:
            assert abs(got_wait - lock.total_wait_cycles) <= \
                0.05 * lock.total_wait_cycles
    benchmark(lambda: lock_statistics(trace, group_by_pid=False))


def test_fig7_sortable_on_all_columns(benchmark, contended_run):
    _, trace, _ = contended_run
    for column in ("time", "count", "spin", "max"):
        stats = lock_statistics(trace, sort_by=column)
        assert stats
    benchmark(lambda: lock_statistics(trace, sort_by="count"))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_fig7_lockstats.py`)
# ---------------------------------------------------------------------------
from functools import lru_cache  # noqa: E402

from repro.perf import benchmark as perf_bench  # noqa: E402


@lru_cache(maxsize=1)
def _contended(quick):
    if quick:
        kernel, facility, _ = run_contention(
            ncpus=2, workers_per_cpu=1, iterations=30,
            global_alloc_fraction=0.85, pc_sample_period=0)
    else:
        kernel, facility, _ = run_contention(
            ncpus=8, workers_per_cpu=2, iterations=60,
            global_alloc_fraction=0.85, pc_sample_period=0)
    return kernel, facility.decode()


@perf_bench("lockstats.table", quick=True, tolerance=0.4)
def hb_table(b):
    kernel, trace = _contended(b.quick)
    stats = b(lambda: lock_statistics(trace, sort_by="time"))
    assert stats
    b.note("rows", len(stats))


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
