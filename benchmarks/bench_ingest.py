"""Zero-copy ingest fast path: mmap decode, parallel pack, warm pool.

Three floors, each asserted against the path it replaces:

* reading a >= 100k-event trace through mmap page-cache views
  (``load_records(use_mmap=True)``, the default) is >= 1.5x faster
  than the buffered ``read()`` path — and decodes bit-identically;
* packing a store with 4 workers is >= 2x faster than the sequential
  pack (skipped below 4 cores; byte-identity of the parallel output is
  asserted unconditionally);
* a warm persistent pool (``repro.core.pool``) answers a roundtrip
  >= 5x faster than paying cold worker startup, which is the whole
  point of keeping it alive between ``--workers`` runs.
"""

import gc
import os
import sys
import time

import numpy as np
import pytest

from _benchutil import write_result
from repro.core import pool
from repro.core.columnar import ColumnarTraceReader, as_batch
from repro.core.registry import default_registry
from repro.core.writer import load_records, save_records
from repro.store import pack_records
from repro.workloads import run_contention

MIN_EVENTS = 100_000
MIN_MMAP_SPEEDUP = 1.5
MIN_PACK_SPEEDUP = 2.0
MIN_POOL_WARMUP = 5.0


def _timeit(fn, repeats=5):
    """Best-of-N wall time with the GC paused during the timed region."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        finally:
            gc.enable()
    gc.collect()
    return best, result


def _build(out_dir, ncpus=8, iterations=120, pc_sample_period=500,
           buffer_words=1024, num_buffers=128):
    """A >= 100k-event, many-frame contention trace, saved raw.

    Small buffers force many frames — the frame payload is the unit
    the ``read()`` path copies and the mmap path only views, so frame
    count is what the zero-copy claim is actually about.
    """
    _kernel, facility, _ = run_contention(
        ncpus=ncpus, workers_per_cpu=2, iterations=iterations,
        pc_sample_period=pc_sample_period, buffer_words=buffer_words,
        num_buffers=num_buffers)
    records = facility.snapshot()
    trace_path = os.path.join(out_dir, "trace.k42")
    save_records(trace_path, records)
    return trace_path, records


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    return _build(str(tmp_path_factory.mktemp("ingest_bench")))


def _decode_arrays(records):
    trace = ColumnarTraceReader(
        registry=default_registry()).decode_records(records)
    return as_batch(trace).to_arrays()


def test_mmap_load_speedup(benchmark, workload):
    """mmap load >= 1.5x the read() path on a 100k-event trace,
    bit-identical decode either way."""
    trace_path, base_records = workload
    ref = _decode_arrays(base_records)
    events = len(ref["time"])
    assert events >= MIN_EVENTS, \
        f"workload too small for the claim: {events} events"

    via_mmap = load_records(trace_path, use_mmap=True)
    via_read = load_records(trace_path, use_mmap=False)
    assert len(via_mmap) == len(via_read) == len(base_records)
    for a, b in zip(via_mmap, via_read):
        assert a.seq == b.seq and a.fill_words == b.fill_words
        assert np.array_equal(a.words, b.words)
    if sys.byteorder == "little":
        assert any(r._file_ref is not None for r in via_mmap), \
            "mmap loads should stamp file provenance on little-endian"
    got = _decode_arrays(via_mmap)
    assert set(got) == set(ref)
    for k in ref:
        assert np.array_equal(got[k], ref[k]), f"column {k} differs"

    load_records(trace_path)  # warm the page cache out of the timing
    t_mmap, _ = _timeit(lambda: load_records(trace_path, use_mmap=True))
    t_read, _ = _timeit(lambda: load_records(trace_path, use_mmap=False))
    speedup = t_read / t_mmap
    assert speedup >= MIN_MMAP_SPEEDUP, (
        f"mmap load only {speedup:.2f}x over read() "
        f"({t_read * 1e3:.1f}ms -> {t_mmap * 1e3:.1f}ms)")

    write_result("ingest_mmap", "\n".join([
        f"zero-copy trace load over {events} events, "
        f"{len(base_records)} frames",
        f"{'path':<24} {'time':>10}",
        f"{'read() (buffered)':<24} {t_read * 1e3:>8.2f}ms",
        f"{'mmap (zero-copy)':<24} {t_mmap * 1e3:>8.2f}ms",
        f"speedup: {speedup:.2f}x",
    ]))
    benchmark(lambda: load_records(trace_path, use_mmap=True))


def test_parallel_pack_byte_identical(workload, tmp_path):
    """A 2-worker pack writes byte-for-byte the sequential store."""
    _, records = workload
    seq_dir = str(tmp_path / "seq.store")
    par_dir = str(tmp_path / "par.store")
    pack_records(records, seq_dir, shard_events=2048, workers=1)
    pack_records(records, par_dir, shard_events=2048, workers=2)
    seq_files = sorted(os.listdir(seq_dir))
    assert seq_files == sorted(os.listdir(par_dir))
    for name in seq_files:
        with open(os.path.join(seq_dir, name), "rb") as fh:
            want = fh.read()
        with open(os.path.join(par_dir, name), "rb") as fh:
            have = fh.read()
        assert want == have, f"{name} differs between packs"


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="pack speedup floor needs >= 4 cores")
def test_parallel_pack_speedup(workload, tmp_path):
    """Packing on 4 workers >= 2x the sequential pack."""
    _, records = workload
    out = str(tmp_path / "speed.store")
    # Warm the pool so worker startup isn't billed to the parallel pack.
    pool.run_tasks(pool._ping, list(range(8)), 4)
    t_seq, _ = _timeit(lambda: pack_records(
        records, out, shard_events=2048, workers=1, force=True), repeats=3)
    t_par, _ = _timeit(lambda: pack_records(
        records, out, shard_events=2048, workers=4, force=True), repeats=3)
    speedup = t_seq / t_par
    assert speedup >= MIN_PACK_SPEEDUP, (
        f"parallel pack only {speedup:.2f}x over sequential "
        f"({t_seq * 1e3:.1f}ms -> {t_par * 1e3:.1f}ms)")
    write_result("ingest_pack_parallel", "\n".join([
        f"store pack, {len(records)} frames",
        f"sequential: {t_seq * 1e3:.1f}ms  4 workers: {t_par * 1e3:.1f}ms  "
        f"speedup: {speedup:.2f}x",
    ]))


def test_warm_pool_startup(workload):
    """A warm pool roundtrip >= 5x faster than cold worker startup."""
    if pool._start_method() is None:
        pytest.skip("process pool disabled (REPRO_POOL_START_METHOD)")

    def roundtrip():
        p = pool.get_pool(2)
        if p is None:
            pytest.skip("no process pool available on this platform")
        return p.submit(pool._ping, 42).result()

    try:
        pool.shutdown()
        t0 = time.perf_counter()
        assert roundtrip() == 42
        t_cold = time.perf_counter() - t0
        t_warm = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            assert roundtrip() == 42
            t_warm = min(t_warm, time.perf_counter() - t0)
        ratio = t_cold / t_warm
        assert ratio >= MIN_POOL_WARMUP, (
            f"warm pool only {ratio:.1f}x over cold startup "
            f"({t_cold * 1e3:.1f}ms -> {t_warm * 1e3:.2f}ms)")
        write_result("ingest_pool_warm", "\n".join([
            f"pool startup ({pool.pool_kind()}): cold "
            f"{t_cold * 1e3:.1f}ms, warm roundtrip {t_warm * 1e3:.2f}ms, "
            f"{ratio:.1f}x",
        ]))
    finally:
        pool.shutdown()


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_ingest.py`)
# ---------------------------------------------------------------------------
import tempfile  # noqa: E402
from functools import lru_cache  # noqa: E402

from repro.perf import benchmark as perf_bench  # noqa: E402


@lru_cache(maxsize=1)
def _harness_workload(quick):
    out_dir = tempfile.mkdtemp(prefix="repro-ingest-bench-")
    if quick:
        return _build(out_dir, ncpus=4, iterations=60,
                      pc_sample_period=1_000)
    return _build(out_dir)


@perf_bench("ingest.load_mmap", quick=True, tolerance=0.4)
def hb_load_mmap(b):
    """Trace load through mmap page-cache views (the default path)."""
    trace_path, records = _harness_workload(b.quick)
    load_records(trace_path)  # warm the page cache
    b(lambda: load_records(trace_path, use_mmap=True))
    b.note("frames", len(records))


@perf_bench("ingest.load_read", quick=True, tolerance=0.4)
def hb_load_read(b):
    """Trace load through buffered read() (--no-mmap)."""
    trace_path, records = _harness_workload(b.quick)
    load_records(trace_path)
    b(lambda: load_records(trace_path, use_mmap=False))
    b.note("frames", len(records))


@perf_bench("ingest.pack_parallel", quick=True, tolerance=0.5)
def hb_pack_parallel(b):
    """Store pack fanned over the shared worker pool (workers=0)."""
    _, records = _harness_workload(b.quick)
    out_dir = tempfile.mkdtemp(prefix="repro-ingest-pack-")
    store = os.path.join(out_dir, "trace.store")
    pool.run_tasks(pool._ping, list(range(4)), None)  # warm the pool
    res = b(lambda: pack_records(records, store, shard_events=1024,
                                 workers=0, force=True))
    b.note("events", res.events)
    b.note("shards", res.shards)


@perf_bench("ingest.pool_roundtrip", quick=True, tolerance=0.6)
def hb_pool_roundtrip(b):
    """One task submitted to the warm persistent pool, result awaited."""
    p = pool.get_pool(2)
    if p is None:
        b.note("pool", "unavailable")
        b(lambda: pool._ping(42))
        return
    p.submit(pool._ping, 0).result()  # warm
    b(lambda: p.submit(pool._ping, 42).result())
    b.note("kind", pool.pool_kind() or "none")


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
