"""Figure 4: the kmon graphical viewing tool.

Paper artifact: a timeline giving a bird's-eye view of system activity,
zoomable, with selected events (TRACE_USER_RUN_ULoader /
TRACE_USER_RETURNED_MAIN) marked and counted, and a click producing the
Figure 5 listing around that instant.

Reproduction: render the same view (text + SVG) over an SDET trace and
verify each interaction: marked-event counts match process activity,
zoom narrows, the click listing returns events.
"""

import pytest

from _benchutil import write_result
from repro.tools.kmon import Timeline
from repro.tools.listing import CYCLES_PER_SECOND
from repro.workloads import run_sdet


@pytest.fixture(scope="module")
def sdet_trace():
    kernel, facility, result = run_sdet(4, scripts_per_cpu=2,
                                        commands_per_script=4)
    return kernel, facility.decode(), result


def test_fig4_timeline_render(benchmark, sdet_trace):
    kernel, trace, result = sdet_trace
    tl = Timeline(trace).mark("TRC_USER_RUN_UL_LOADER",
                              "TRC_USER_RETURNED_MAIN")
    text = tl.render(width=100)
    counts = tl.marked_counts()

    # Every process creation logged one loader event; every exit one
    # returned-main — kmon's counters must agree with the kernel.
    created = sum(1 for p in kernel.processes.values() if p.pid >= 2)
    exited = sum(1 for p in kernel.processes.values()
                 if p.pid >= 2 and p.exited)
    assert counts["TRC_USER_RUN_UL_LOADER"] == created
    assert counts["TRC_USER_RETURNED_MAIN"] == exited

    # Zoom to the middle third; click in the middle for the listing.
    t0s, t1s = tl.t0 / CYCLES_PER_SECOND, tl.t1 / CYCLES_PER_SECOND
    zoomed = tl.zoom(t0s + (t1s - t0s) / 3, t0s + 2 * (t1s - t0s) / 3)
    click = zoomed.click_listing((t0s + t1s) / 2, window_seconds=5e-5)
    assert click

    svg = tl.render_svg()
    out = [text, "",
           f"marked counts: {counts}",
           f"zoomed window: {(zoomed.t1 - zoomed.t0) / 1e6:.3f}M cycles",
           "click listing sample:", *click.splitlines()[:5],
           f"SVG render: {len(svg)} bytes"]
    write_result("fig4_kmon", "\n".join(out))
    benchmark(lambda: Timeline(trace).render(width=100))


def test_fig4_svg_speed(benchmark, sdet_trace):
    _, trace, _ = sdet_trace
    tl = Timeline(trace).mark("TRC_USER_RETURNED_MAIN")
    svg = benchmark(tl.render_svg)
    assert svg.startswith("<svg")


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_fig4_kmon.py`)
# ---------------------------------------------------------------------------
from functools import lru_cache  # noqa: E402

from repro.perf import benchmark as perf_bench  # noqa: E402


@lru_cache(maxsize=1)
def _kmon_trace():
    _, facility, _ = run_sdet(2, scripts_per_cpu=1, commands_per_script=4)
    return facility.decode()


@perf_bench("kmon.render_text", quick=True)
def hb_render_text(b):
    trace = _kmon_trace()
    text = b(lambda: Timeline(trace).render(width=100))
    assert text


@perf_bench("kmon.render_svg", quick=True)
def hb_render_svg(b):
    tl = Timeline(_kmon_trace()).mark("TRC_USER_RETURNED_MAIN")
    svg = b(tl.render_svg)
    assert svg.startswith("<svg")
    b.note("svg_bytes", len(svg))


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
