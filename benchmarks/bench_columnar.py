"""Columnar analytics: structure-of-arrays batches vs the scalar walk.

The tentpole claim under test: porting the analysis tools from
per-event Python loops to mask-selects over ``EventBatch`` columns
speeds the tool-aggregation paths up by >= 3x on a contended
multiprocessor trace — while staying bit-identical to the scalar
reference, which every timed comparison below asserts.

Four aggregation paths are measured, mirroring the paper's figures:
the Figure 6 PC-sample histogram, the Figure 7 lock-contention table,
the Figure 5 listing selection, and the §4.5 scheduler statistics.
"""

import gc
import time

import pytest

from _benchutil import write_result
from repro.core.columnar import ColumnarTraceReader, as_batch
from repro.core.registry import default_registry
from repro.core.stream import TraceReader
from repro.tools.listing import event_listing
from repro.tools.lockstats import lock_statistics
from repro.tools.pcprofile import pc_profile
from repro.tools.schedstats import sched_statistics
from repro.workloads import run_contention

MIN_SPEEDUP = 3.0


def _timeit(fn, repeats=3):
    """Best-of-N wall time with the GC paused during the timed region."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        finally:
            gc.enable()
    gc.collect()
    return best, result


def _build(ncpus=8, iterations=120, pc_sample_period=500):
    kernel, facility, _ = run_contention(
        ncpus=ncpus, workers_per_cpu=2, iterations=iterations,
        pc_sample_period=pc_sample_period)
    records = facility.snapshot()
    reg = default_registry()
    scalar = TraceReader(registry=reg).decode_records(records)
    columnar = ColumnarTraceReader(registry=reg).decode_records(records)
    as_batch(columnar)  # build the SoA columns outside the timed regions
    return kernel, scalar, columnar


@pytest.fixture(scope="module")
def workload():
    return _build()


def _listing_key(events):
    return [(e.cpu, e.seq, e.offset, tuple(e.data), e.time) for e in events]


def _cases(kernel, scalar, columnar):
    sym = kernel.symbols()
    names = ["TRC_LOCK_CONTEND_START", "TRC_PROC_CTX_SWITCH"]
    return [
        ("pcprofile (fig 6)",
         lambda: pc_profile(scalar, sym.pc_names, columnar=False),
         lambda: pc_profile(columnar, sym.pc_names, columnar=True),
         lambda a, b: a == b),
        ("lockstats (fig 7)",
         lambda: lock_statistics(scalar, columnar=False),
         lambda: lock_statistics(columnar, columnar=True),
         lambda a, b: a == b),
        ("listing select (fig 5)",
         lambda: event_listing(scalar, names=names, columnar=False),
         lambda: event_listing(columnar, names=names, columnar=True),
         lambda a, b: _listing_key(a) == _listing_key(b)),
        ("schedstats (§4.5)",
         lambda: sched_statistics(scalar, columnar=False),
         lambda: sched_statistics(columnar, columnar=True),
         lambda a, b: a == b),
    ]


def test_columnar_tool_speedups(benchmark, workload):
    """Every ported aggregation path: >= 3x over the scalar walk, with
    bit-identical output."""
    kernel, scalar, columnar = workload
    n = len(as_batch(columnar))
    rows = []
    for label, scalar_fn, columnar_fn, same in _cases(kernel, scalar,
                                                      columnar):
        t_s, ref = _timeit(scalar_fn)
        t_c, got = _timeit(columnar_fn)
        assert same(ref, got), f"{label}: columnar output differs"
        speedup = t_s / t_c
        rows.append((label, t_s, t_c, speedup))
        assert speedup >= MIN_SPEEDUP, (
            f"{label}: columnar only {speedup:.1f}x over scalar "
            f"({t_s * 1e3:.1f}ms -> {t_c * 1e3:.1f}ms)")

    lines = [f"columnar tool aggregation over {n} events",
             f"{'path':<24} {'scalar':>10} {'columnar':>10} {'speedup':>8}"]
    for label, t_s, t_c, speedup in rows:
        lines.append(f"{label:<24} {t_s * 1e3:>8.1f}ms {t_c * 1e3:>8.1f}ms "
                     f"{speedup:>7.1f}x")
    write_result("columnar_speedup", "\n".join(lines))

    sym = kernel.symbols()
    benchmark(lambda: pc_profile(columnar, sym.pc_names, columnar=True))


def test_columnar_decode_matches_and_keeps_pace(benchmark, workload):
    """The columnar reader itself must not regress decode: same events
    and anomalies, and no worse than 2x the batched scalar decode."""
    _, scalar, columnar = workload
    assert len(as_batch(columnar)) == len(scalar.all_events())
    kernel, facility, _ = run_contention(
        ncpus=4, workers_per_cpu=2, iterations=60, pc_sample_period=1_000)
    records = facility.snapshot()
    reg = default_registry()
    t_scalar, ref = _timeit(
        lambda: TraceReader(registry=reg).decode_records(records))
    t_col, got = _timeit(
        lambda: ColumnarTraceReader(registry=reg).decode_records(records))
    assert [(e.cpu, e.seq, e.offset, tuple(e.data), e.time)
            for e in ref.all_events()] == \
        [(e.cpu, e.seq, e.offset, tuple(e.data), e.time)
         for e in got.all_events()]
    assert got.anomalies == ref.anomalies
    assert t_col <= 2.0 * t_scalar, (
        f"columnar decode {t_col * 1e3:.1f}ms vs scalar "
        f"{t_scalar * 1e3:.1f}ms")
    benchmark(lambda: ColumnarTraceReader(registry=reg)
              .decode_records(records))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_columnar.py`)
# ---------------------------------------------------------------------------
from functools import lru_cache  # noqa: E402

from repro.perf import benchmark as perf_bench  # noqa: E402


@lru_cache(maxsize=1)
def _harness_workload(quick):
    if quick:
        return _build(ncpus=4, iterations=60, pc_sample_period=1_000)
    return _build()


@perf_bench("columnar.pcprofile", quick=True, tolerance=0.4)
def hb_pcprofile(b):
    """Figure 6 histogram on the columnar path (mask + np.unique)."""
    kernel, _, columnar = _harness_workload(b.quick)
    sym = kernel.symbols()
    hist = b(lambda: pc_profile(columnar, sym.pc_names, columnar=True))
    assert hist
    b.note("samples", sum(c for c, _ in hist))


@perf_bench("columnar.lockstats", quick=True, tolerance=0.4)
def hb_lockstats(b):
    """Figure 7 contention table: columnar context + CONTEND-only replay."""
    _, _, columnar = _harness_workload(b.quick)
    stats = b(lambda: lock_statistics(columnar, columnar=True))
    assert stats
    b.note("groups", len(stats))


@perf_bench("columnar.listing", quick=True, tolerance=0.4)
def hb_listing(b):
    """Figure 5 selection as boolean masks over the merged batch."""
    _, _, columnar = _harness_workload(b.quick)
    events = b(lambda: event_listing(
        columnar, names=["TRC_LOCK_CONTEND_START", "TRC_PROC_CTX_SWITCH"],
        columnar=True))
    assert events
    b.note("selected", len(events))


@perf_bench("columnar.decode", quick=True, tolerance=0.4)
def hb_decode(b):
    """Records -> ColumnarTrace, the SoA analogue of decode_batched."""
    kernel, facility, _ = run_contention(
        ncpus=2 if b.quick else 4, workers_per_cpu=2,
        iterations=40 if b.quick else 80, pc_sample_period=1_000)
    records = facility.snapshot()
    reg = default_registry()
    trace = b(lambda: ColumnarTraceReader(registry=reg)
              .decode_records(records))
    b.note("events", len(as_batch(trace)))


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
