"""§5: static in-place events vs dynamic (KernInst-style) probes.

Paper claim: "even KernInst, which is targeted at kernel
instrumentation, has higher overheads than the facility described here.
This overhead is due in part to the flexible and dynamic nature of
KernInst requiring springboard and overwrite instructions. ... for
kernel developers tuning their own code, the ease with which trace
events can be added and the efficiency with which they operate will
continue to make them the mode of choice" — while dynamic tools remain
"necessary when attempting to start monitoring in unanticipated ways an
already installed and running machine".

Reproduction: the same hot function monitored three ways — uninstrumented,
via the compiled-in static event, via a dynamic probe — with per-hit
overhead compared; plus the dynamic tool's unique capability (attaching
to a live, running system) demonstrated.
"""


from _benchutil import write_result
from repro.core.facility import TraceFacility
from repro.core.majors import Major
from repro.ksim import Compute, Kernel, KernelConfig

HITS = 200


def build(static_event: bool, probe: bool):
    kernel = Kernel(KernelConfig(ncpus=1))
    fac = TraceFacility(ncpus=1, clock=kernel.clock, buffer_words=4096,
                        num_buffers=16)
    fac.enable_all()
    kernel.facility = fac
    if probe:
        kernel.probes.attach("kernel::hot_path")

    def prog(api):
        for i in range(HITS):
            if static_event:
                # The compiled-in trace statement on the path.
                cost = kernel.trace(None, Major.TEST, 1, (i,))
                yield Compute(10_000 + cost, pc="kernel::hot_path")
            else:
                yield Compute(10_000, pc="kernel::hot_path")

    kernel.spawn_process(prog, "p")
    assert kernel.run_until_quiescent()
    return kernel


def test_static_events_cheaper_than_dynamic_probes(benchmark):
    base = build(static_event=False, probe=False).engine.now
    static = build(static_event=True, probe=False).engine.now
    probed = build(static_event=False, probe=True).engine.now

    static_per_hit = (static - base) / HITS
    probe_per_hit = (probed - base) / HITS
    ratio = probe_per_hit / static_per_hit
    write_result(
        "probes_vs_static",
        f"monitoring one hot function, {HITS} entries (cycles/hit)\n"
        f"{'uninstrumented':>16}: baseline\n"
        f"{'static event':>16}: +{static_per_hit:.0f} cycles/hit "
        "(the 91+11 compiled-in path)\n"
        f"{'dynamic probe':>16}: +{probe_per_hit:.0f} cycles/hit "
        "(springboard + event)\n"
        f"dynamic/static overhead ratio: {ratio:.1f}x "
        "(paper: KernInst-style insertion has higher overheads)",
    )
    assert 80 <= static_per_hit <= 130          # ~the 91+11 cost
    assert ratio > 3, "probes must cost several times the static event"
    benchmark(lambda: build(static_event=True, probe=False))


def test_dynamic_probe_on_live_system(benchmark):
    """The §5 counterpoint: only the dynamic tool can start monitoring a
    system that is already running."""
    kernel = Kernel(KernelConfig(ncpus=1))
    fac = TraceFacility(ncpus=1, clock=kernel.clock, buffer_words=4096,
                        num_buffers=16)
    fac.enable_all()
    kernel.facility = fac

    def prog(api):
        for i in range(100):
            yield Compute(10_000, pc="kernel::hot_path")

    kernel.spawn_process(prog, "p")
    kernel.run(until=400_000)                    # system is live...
    probe = kernel.probes.attach("kernel::hot_path")  # ...attach now
    assert kernel.run_until_quiescent()
    write_result(
        "probes_live_attach",
        f"probe attached at cycle 400,000 into a running system;\n"
        f"caught {probe.hits} of 100 entries (the ones after attach)",
    )
    assert 0 < probe.hits < 100

    def attach_detach():
        p = kernel.probes.attach("kernel::some_path")
        kernel.probes.detach(p)

    benchmark(attach_detach)

# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_probes.py`)
# ---------------------------------------------------------------------------
from repro.perf import benchmark as perf_bench  # noqa: E402


@perf_bench("probes.attach_detach", quick=True)
def hb_attach_detach(b):
    kernel = Kernel(KernelConfig(ncpus=1))

    def attach_detach():
        p = kernel.probes.attach("kernel::some_path")
        kernel.probes.detach(p)

    b(attach_detach)


@perf_bench("probes.static_instrumented_run", quick=True, tolerance=0.4)
def hb_static_run(b):
    """A full simulated run with the compiled-in static event on the
    hot path — the cheap alternative the paper argues for."""
    kernel = b(lambda: build(static_event=True, probe=False))
    assert kernel.engine.now > 0


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
