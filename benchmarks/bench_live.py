"""Live-follow throughput: the streaming seam end to end.

Two figures for the incremental pipeline (`repro.live`):

* **follow_file** — tail a complete ``.k42`` file through
  ``TraceFileFollower`` + ``LiveMonitor`` (frame cursor, per-buffer
  scan, columnar assembly, window absorb).  The yardstick is the
  one-shot post-mortem decode of the same file; the follower should
  stay within a small constant factor of it.
* **follow_shm** — the whole shared-memory round trip in one process:
  create a region, log through an attached logger, follow it with
  ``ShmFollower`` + ``LiveMonitor``.  Carries segment setup/teardown,
  so its band is wider.

Both are quick-tier: they gate in CI against the committed baseline.
"""

import io

from repro.core.buffers import TraceControl
from repro.core.logger import TraceLogger
from repro.core.majors import Major
from repro.core.mask import TraceMask
from repro.core.registry import default_registry
from repro.core.timestamps import ManualClock
from repro.core.writer import save_records
from repro.live.monitor import LiveMonitor
from repro.live.source import ShmFollower, TraceFileFollower
from repro.perf import benchmark as perf_bench
from repro.shm import ShmTraceRegion


def _trace_blob(n_events: int) -> bytes:
    """A single-CPU trace of ``n_events`` 2-word TEST events."""
    control = TraceControl(buffer_words=1024, num_buffers=256)
    mask = TraceMask()
    mask.enable_all()
    clock = ManualClock()
    logger = TraceLogger(control, mask, clock, registry=default_registry())
    logger.start()
    for i in range(n_events):
        clock.advance(3)
        logger.log1(Major.TEST, 1, i)
    buf = io.BytesIO()
    save_records(buf, control.flush())
    return buf.getvalue()


@perf_bench("live.follow_file", quick=True, tolerance=0.4)
def hb_follow_file(b):
    """Follow one complete trace file end to end: cursor over every
    frame, scan, incremental assembly, window absorb."""
    import tempfile

    n_events = 20_000 if b.quick else 100_000
    blob = _trace_blob(n_events)
    with tempfile.NamedTemporaryFile(suffix=".k42") as fh:
        fh.write(blob)
        fh.flush()

        def kernel():
            follower = TraceFileFollower(fh.name)
            try:
                mon = LiveMonitor(registry=default_registry())
                mon.drain(follower, idle_timeout_s=0)
            finally:
                follower.close()
            assert follower.tail_state == "complete"
            assert mon.total_events >= n_events
            return mon

        mon = b(kernel)
    b.note("events", mon.total_events)
    b.note("bytes", len(blob))


@perf_bench("live.follow_shm", quick=True, tolerance=0.6)
def hb_follow_shm(b):
    """Log into a fresh shm region and follow it live, in one process.

    Includes segment create/attach/unlink each iteration — the honest
    cost of standing up the live seam — hence the wider band.
    """
    n_events = 5_000 if b.quick else 25_000

    def kernel():
        region = ShmTraceRegion.create(ncpus=1, buffer_words=1024,
                                       num_buffers=64)
        try:
            attached = ShmTraceRegion.attach(region.name)
            try:
                logger = attached.logger(0)
                for i in range(n_events):
                    logger.log1(Major.TEST, 1, i)
                region.set_done()
                src = ShmFollower(region, lag=1)
                mon = LiveMonitor(registry=default_registry())
                mon.drain(src, idle_timeout_s=0)
            finally:
                attached.close()
        finally:
            region.close()
            region.unlink()
        assert mon.total_events >= n_events
        return mon

    mon = b(kernel)
    b.note("events", mon.total_events)


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
