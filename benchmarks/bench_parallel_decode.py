"""Decode throughput: sequential vs. batched vs. N-worker parallel.

The paper's boundary rule (§3.2 — no event ever crosses a buffer
boundary) is what makes trace *analysis* scale: every buffer is
independently parsable, so decoding can be vectorized per buffer and
sharded across worker processes.  This benchmark measures the decode
pipeline three ways on one deterministic multi-CPU trace:

* **sequential** — the word-at-a-time reference reader
  (``TraceReader(batch=False)``, the seed implementation);
* **batched** — the vectorized numpy scan (``batch=True``, default);
* **parallel** — ``decode_records_parallel`` with 2 and 4 workers.

Every path must produce the identical trace (asserted event-for-event),
and 4 workers must be at least 2x the sequential throughput.  Timing
runs with the GC paused (applied equally to every path) so collector
pauses over the growing event graph don't swamp the comparison.

The trace size is tunable via ``BENCH_PARALLEL_EVENTS`` (default
200_000 events) to let CI use a quick deterministic subset.
"""

import gc
import os
import time

import pytest

from _benchutil import write_result
from repro.core import ManualClock, TraceFacility, TraceReader, default_registry
from repro.core.parallel import decode_records_parallel

N_EVENTS = int(os.environ.get("BENCH_PARALLEL_EVENTS", "200000"))
NCPUS = 4


def build_trace(n_events=N_EVENTS, ncpus=NCPUS):
    """A deterministic multi-CPU trace: ManualClock, fixed event mix."""
    clock = ManualClock(start=1000)
    fac = TraceFacility(ncpus=ncpus, buffer_words=4096, num_buffers=8,
                        clock=clock)
    fac.enable_all()
    records = []
    for i in range(n_events):
        fac.log(i % ncpus, 2 + (i % 6), i % 16, [i, i * 7, i * 13][: i % 4])
        clock.advance(37)
        if i % 20_000 == 19_999:
            records.extend(fac.drain())
    records.extend(fac.flush())
    return records


@pytest.fixture(scope="module")
def records():
    return build_trace()


def _timeit(fn, repeats=3):
    """Best-of-N wall time with the GC paused during the timed region."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        finally:
            gc.enable()
    gc.collect()
    return best, result


def _as_comparable(trace):
    """A trace as plain tuples, for bit-exact equality assertions."""
    events = {
        cpu: [
            (e.cpu, e.seq, e.offset, e.ts32, e.major, e.minor,
             tuple(e.data), e.time, e.spec.name if e.spec else None)
            for e in evs
        ]
        for cpu, evs in trace.events_by_cpu.items()
    }
    anomalies = [(a.cpu, a.seq, a.offset, a.kind, a.detail)
                 for a in trace.anomalies]
    return events, anomalies


def test_parallel_decode_throughput(benchmark, records):
    """Sequential vs. batched vs. 2/4-worker decode of the same trace."""
    reg = default_registry()
    rows = []
    t_seq, trace_seq = _timeit(
        lambda: TraceReader(registry=reg, batch=False).decode_records(records)
    )
    nev = sum(len(v) for v in trace_seq.events_by_cpu.values())
    baseline = _as_comparable(trace_seq)

    candidates = [
        ("batched", lambda: TraceReader(registry=reg).decode_records(records)),
        ("2 workers", lambda: decode_records_parallel(
            records, registry=reg, workers=2)),
        ("4 workers", lambda: decode_records_parallel(
            records, registry=reg, workers=4)),
    ]
    rows.append(("sequential (seed)", t_seq, 1.0))
    speedups = {}
    for label, fn in candidates:
        t, trace = _timeit(fn)
        assert _as_comparable(trace) == baseline, (
            f"{label} decode differs from sequential"
        )
        speedups[label] = t_seq / t
        rows.append((label, t, t_seq / t))

    lines = [
        f"decode throughput, {nev} events on {len(records)} buffers "
        f"({NCPUS} trace CPUs, host cores: {os.cpu_count()})",
        f"{'path':<18} {'seconds':>8} {'Mev/s':>7} {'speedup':>8}",
    ]
    for label, t, s in rows:
        lines.append(f"{label:<18} {t:>8.3f} {nev / t / 1e6:>7.2f} {s:>7.2f}x")
    lines.append("all paths verified event-for-event identical")
    write_result("parallel_decode", "\n".join(lines))

    assert speedups["4 workers"] >= 2.0, (
        f"4-worker decode only {speedups['4 workers']:.2f}x over sequential"
    )

    # pytest-benchmark kernel: the batched scan of one buffer.
    from repro.core.stream import scan_buffer

    rec = max(records, key=lambda r: r.fill_words)
    benchmark(lambda: scan_buffer(rec.words, rec.fill_words))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_parallel_decode.py`)
# ---------------------------------------------------------------------------
from functools import lru_cache  # noqa: E402

from repro.perf import benchmark as perf_bench  # noqa: E402


@lru_cache(maxsize=1)
def _harness_records(quick):
    return build_trace(n_events=20_000 if quick else min(N_EVENTS, 120_000))


@perf_bench("parallel.scan_buffer", quick=True, tolerance=0.5)
def hb_scan_buffer(b):
    """The vectorized numpy header scan of one full buffer."""
    from repro.core.stream import scan_buffer

    records = _harness_records(b.quick)
    rec = max(records, key=lambda r: r.fill_words)
    b(lambda: scan_buffer(rec.words, rec.fill_words))


@perf_bench("parallel.decode_batched", quick=True, tolerance=0.4)
def hb_decode_batched(b):
    """Batched (default) decode of the whole deterministic trace."""
    records = _harness_records(b.quick)
    reg = default_registry()
    reader = TraceReader(registry=reg)
    trace = b(lambda: reader.decode_records(records))
    n = sum(len(v) for v in trace.events_by_cpu.values())
    assert n > 0
    b.note("events", n)


@perf_bench("parallel.decode_workers", tolerance=0.75)
def hb_decode_workers(b):
    """Worker-pool decode; spawn/fork overhead makes this inherently
    noisier, hence the wide band."""
    records = _harness_records(b.quick)
    reg = default_registry()
    workers = min(4, os.cpu_count() or 1)
    b.note("workers", workers)
    trace = b(lambda: decode_records_parallel(records, registry=reg,
                                              workers=workers))
    assert trace.all_events()


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
