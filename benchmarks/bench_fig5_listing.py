"""Figure 5: the trace-event listing tool.

Paper artifact: a textual dump — time in seconds, __TR event name,
self-describing rendering — covering memory, exception, and user events
from a real run (TRC_USER_RUN_UL_LOADER, TRC_EXCEPTION_PGFLT,
TRC_MEM_FCMCOM_ATCH_REG, TRC_EXCEPTION_PPC_CALL, ...).

Reproduction: generate the listing from an SDET trace and check the
same event vocabulary appears, rendered through the eventParse
registry with zero per-event tool knowledge; benchmark decode+format
throughput.
"""

import re

import pytest

from _benchutil import write_result
from repro.core.stream import TraceReader
from repro.tools.listing import format_listing
from repro.workloads import run_sdet

FIGURE5_NAMES = [
    "TRC_USER_RUN_UL_LOADER",
    "TRC_EXCEPTION_PGFLT",
    "TRC_EXCEPTION_PGFLT_DONE",
    "TRC_MEM_FCMCOM_ATCH_REG",
    "TRC_MEM_FCMCRW_CREATE",
    "TRC_EXCEPTION_PPC_CALL",
    "TRC_EXCEPTION_PPC_RETURN",
    "TRC_MEM_REG_CREATE_FIX",
]


@pytest.fixture(scope="module")
def traced_run():
    kernel, facility, _ = run_sdet(2, scripts_per_cpu=2,
                                   commands_per_script=4)
    records = facility.flush()
    return kernel, facility, records


def test_fig5_listing_content(benchmark, traced_run):
    kernel, facility, records = traced_run
    reader = TraceReader(registry=facility.registry)
    trace = reader.decode_records(records)
    text = format_listing(trace)
    present = [n for n in FIGURE5_NAMES if n in text]
    missing = [n for n in FIGURE5_NAMES if n not in text]
    assert not missing, f"Figure 5 vocabulary missing: {missing}"
    for line in text.splitlines()[:200]:
        assert re.match(r"^\s*\d+\.\d{7} TRC_\w+\s+\S", line)
    sample = "\n".join(text.splitlines()[:25])
    write_result(
        "fig5_listing",
        sample + f"\n...\n({len(text.splitlines())} lines total; "
        f"all {len(FIGURE5_NAMES)} Figure 5 event kinds present)",
    )
    benchmark(lambda: format_listing(trace, limit=500))


def test_fig5_decode_throughput(benchmark, traced_run):
    """Events decoded per second from raw buffers (tool-side cost)."""
    kernel, facility, records = traced_run
    reader = TraceReader(registry=facility.registry)

    def decode():
        return reader.decode_records(records)

    trace = benchmark(decode)
    assert len(trace.all_events()) > 1000


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_fig5_listing.py`)
# ---------------------------------------------------------------------------
from functools import lru_cache  # noqa: E402

from repro.perf import benchmark as perf_bench  # noqa: E402


@lru_cache(maxsize=1)
def _listing_setup():
    _, facility, _ = run_sdet(2, scripts_per_cpu=1, commands_per_script=4)
    records = facility.flush()
    reader = TraceReader(registry=facility.registry)
    return reader, records, reader.decode_records(records)


@perf_bench("listing.format", quick=True)
def hb_format(b):
    _, _, trace = _listing_setup()
    text = b(lambda: format_listing(trace, limit=500))
    assert text


@perf_bench("listing.decode_records", quick=True)
def hb_decode(b):
    """Tool-side decode throughput from raw buffers."""
    reader, records, _ = _listing_setup()
    trace = b(lambda: reader.decode_records(records))
    n = len(trace.all_events())
    assert n > 100
    b.note("events", n)


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
