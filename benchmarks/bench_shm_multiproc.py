"""Shared-memory logging cost and cross-process drain throughput.

What the shm seam costs, measured at three scales:

* **word CAS** — one ``ShmAtomicWord.cas`` over the segment (the
  cross-process ``stwcx.`` stand-in; every reserve pays at least one);
* **single-process log** — ``log_words`` through an attached
  ``ShmTraceRegion`` logger, against the same call on process-private
  buffers (the PR-1 logger) for the segment overhead ratio;
* **multi-process workload** — N writer processes racing a live
  collector over one segment, end-to-end events/second including the
  drain to the standard trace-file format.

The multi-process figure carries process start-up and scheduler noise,
so its tolerance band is wide; the in-process figures are the stable
regression canaries.
"""

import gc
import os
import time

import pytest

from _benchutil import write_result
from repro.core.majors import Major
from repro.core.writer import load_records
from repro.shm import ShmTraceRegion, run_shm_workload
from repro.shm.procs import expected_payloads

N_EVENTS = int(os.environ.get("BENCH_SHM_EVENTS", "30000"))
WRITERS = 2


def _timeit(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        finally:
            gc.enable()
    gc.collect()
    return best, result


def test_shm_multiproc_throughput(tmp_path):
    """End-to-end: writers + live collector, drained file complete."""
    out = str(tmp_path / "bench.k42")
    events = max(1000, N_EVENTS // WRITERS)
    t0 = time.perf_counter()
    result = run_shm_workload(
        out, writers=WRITERS, events=events, data_words=2,
        buffer_words=1024, num_buffers=64, start_method="fork")
    elapsed = time.perf_counter() - t0
    assert result.collector["dropped"] == 0, result.collector

    from repro.core.stream import TraceReader
    trace = TraceReader().decode_records(load_records(out))
    issued = expected_payloads(WRITERS, events, 2)
    for cpu in range(WRITERS):
        got = [list(e.data) for e in trace.events(cpu)
               if e.major == Major.TEST]
        assert got == issued[cpu]

    total = WRITERS * events
    write_result("shm_multiproc", "\n".join([
        f"{WRITERS} writer processes + 1 collector, {total} events",
        f"wall {elapsed:.3f}s  ({total / elapsed / 1e3:.0f} kev/s "
        f"end-to-end, incl. process start-up and drain)",
        f"collector: {result.collector['frames']} frames, "
        f"{result.collector['polls']} polls, "
        f"{result.collector['held']} held, 0 dropped",
        "drained file verified complete on every CPU",
    ]))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_shm_multiproc.py`)
# ---------------------------------------------------------------------------
from repro.perf import benchmark as perf_bench  # noqa: E402


@perf_bench("shm.word_cas", quick=True, tolerance=0.4)
def hb_word_cas(b):
    """One successful CAS on a shared-segment word (micro-lock path)."""
    region = ShmTraceRegion.create(ncpus=1, buffer_words=64, num_buffers=4)
    try:
        word = region.index_word(0)
        start = word.load()

        def kernel():
            old = word.load()
            assert word.compare_and_store(old, old + 1)

        b(kernel)
        assert word.load() > start
    finally:
        region.close()
        region.unlink()


@perf_bench("shm.log_words", quick=True, tolerance=0.4)
def hb_log_words(b):
    """One 3-word event through an attached shm logger (reserve/log/
    commit over the segment, fcntl micro-lock and all)."""
    region = ShmTraceRegion.create(ncpus=1, buffer_words=1024,
                                   num_buffers=64)
    attached = ShmTraceRegion.attach(region.name)
    try:
        logger = attached.logger(0)
        b(lambda: logger.log_words(Major.TEST, 1, (1, 2)))
    finally:
        attached.close()
        region.close()
        region.unlink()


@perf_bench("shm.private_log_words", quick=True, tolerance=0.4)
def hb_private_log_words(b):
    """The same event on process-private buffers — the yardstick the
    shm overhead ratio is read against."""
    from repro.core.facility import TraceFacility

    fac = TraceFacility(ncpus=1, buffer_words=1024, num_buffers=64,
                        mode="flight")
    fac.enable_all()
    logger = fac.logger(0)
    b(lambda: logger.log_words(Major.TEST, 1, (1, 2)))


@perf_bench("shm.multiproc_drain", tolerance=0.9)
def hb_multiproc_drain(b):
    """Full cross-process workload: fork writers, live collector,
    drain to file.  Dominated by process start-up at quick scale —
    hence the wide band — but it is the only number that watches the
    whole seam end to end."""
    import tempfile

    events = 2000 if b.quick else 10000

    def run():
        with tempfile.TemporaryDirectory() as d:
            out = os.path.join(d, "bench.k42")
            result = run_shm_workload(
                out, writers=2, events=events, data_words=2,
                buffer_words=1024, num_buffers=64, start_method="fork")
            assert result.collector["dropped"] == 0
            return result

    b(run)
    b.note("events", 2 * events)


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
