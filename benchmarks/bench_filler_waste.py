"""§3.2: variable-length events, fillers, and alignment waste.

Paper numbers: "30 to 40 percent of events end exactly on a buffer
boundary and because there are very few events larger than 4 64-bit
words, this alignment in practice wastes very little space."

Reproduction: run SDET, measure (a) the fraction of buffers closed
without needing a filler, (b) the fraction of trace memory spent on
filler words, and (c) the event-size distribution — verifying most
events are <= 4 words and waste is small.  Also the variable- vs
fixed-length space comparison that motivates the design.
"""

import pytest

from _benchutil import write_result
from repro.core.stream import TraceReader
from repro.workloads import run_sdet


@pytest.fixture(scope="module")
def sdet_fill():
    kernel, facility, _ = run_sdet(4, scripts_per_cpu=2,
                                   commands_per_script=5,
                                   buffer_words=1024, num_buffers=16)
    records = facility.flush()
    reader = TraceReader(registry=facility.registry, include_fillers=True)
    trace = reader.decode_records(records)
    return kernel, facility, records, trace


def test_filler_waste_small(benchmark, sdet_fill):
    kernel, facility, records, trace = sdet_fill
    stats = facility.stats()
    completed = stats["buffers_completed"]
    fillers = stats["fillers"]
    filler_words = stats["filler_words"]
    total_words = stats["words_logged"]
    exact = completed - fillers
    exact_pct = 100.0 * exact / max(1, completed)
    waste_pct = 100.0 * filler_words / max(1, total_words)

    lines = [
        "filler/alignment accounting (SDET, 1024-word buffers)",
        f"buffers completed:          {completed}",
        f"closed by filler:           {fillers}",
        f"closed exactly on boundary: {exact} ({exact_pct:.1f}%)",
        f"filler words:               {filler_words} of {total_words} "
        f"({waste_pct:.2f}% waste)",
        "",
        "paper: 30-40% of buffers end exactly on the boundary; waste is",
        "very little because few events exceed 4 data words.",
    ]
    write_result("filler_waste", "\n".join(lines))
    assert waste_pct < 2.0, "alignment waste must be small"
    assert completed > 10
    benchmark(lambda: facility.stats())


def test_event_size_distribution(benchmark, sdet_fill):
    kernel, facility, records, trace = sdet_fill
    sizes = {}
    for e in trace.all_events():
        if e.is_filler:
            continue
        words = len(e.data) + 1
        sizes[words] = sizes.get(words, 0) + 1
    total = sum(sizes.values())
    small = sum(c for w, c in sizes.items() if w <= 5)  # header + 4 data
    lines = ["event size distribution (words incl. header)"]
    for w in sorted(sizes):
        lines.append(f"  {w:>2} words: {sizes[w]:>7} "
                     f"({100.0 * sizes[w] / total:.1f}%)")
    lines.append(f"events with <= 4 data words: {100.0 * small / total:.1f}% "
                 "(paper: 'very few events larger than 4 64-bit words')")
    write_result("event_sizes", "\n".join(lines))
    assert small / total > 0.9
    reader = TraceReader(registry=facility.registry)
    benchmark(lambda: reader.decode_records(records))


def test_variable_vs_fixed_length_space(benchmark, sdet_fill):
    """The §2 motivation: fixed-length slots sized for the largest event
    waste space and write volume that variable-length events avoid."""
    kernel, facility, records, trace = sdet_fill
    events = [e for e in trace.all_events() if not e.is_filler]
    variable_words = sum(len(e.data) + 1 for e in events)
    max_words = max(len(e.data) + 1 for e in events)
    fixed_words = len(events) * max_words
    ratio = fixed_words / max(1, variable_words)
    write_result(
        "variable_vs_fixed",
        f"variable-length stream: {variable_words} words\n"
        f"fixed-length stream (slot = largest event, {max_words} words): "
        f"{fixed_words} words\n"
        f"fixed/variable = {ratio:.2f}x more space and write volume",
    )
    assert ratio > 1.5
    benchmark(lambda: sum(len(e.data) for e in events))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_filler_waste.py`)
# ---------------------------------------------------------------------------
from functools import lru_cache  # noqa: E402

from repro.perf import benchmark as perf_bench  # noqa: E402


@lru_cache(maxsize=1)
def _filler_records():
    _, facility, _ = run_sdet(2, scripts_per_cpu=1, commands_per_script=4,
                              buffer_words=1024, num_buffers=16)
    return facility, facility.flush()


@perf_bench("fillers.decode_with_fillers", quick=True)
def hb_decode_with_fillers(b):
    """Decode including filler events — the §3.2 accounting path."""
    facility, records = _filler_records()
    reader = TraceReader(registry=facility.registry, include_fillers=True)
    trace = b(lambda: reader.decode_records(records))
    assert trace.all_events()


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
