"""Figure 6: breakdown of time within a single process (PC profiling).

Paper artifact: a sorted histogram for pid 0x1 (baseServers) whose top
entry is ``FairBLock::_acquire()`` followed by hash-table, dispatcher,
allocation, and dentry functions — lock spinning dominating a contended
server.

Reproduction: PC-sampling on the contention workload; the per-pid
histogram for baseServers must be led by lock-acquire spinning or the
service functions, with the same vocabulary.
"""

import pytest

from _benchutil import write_result
from repro.tools.pcprofile import format_profile, pc_profile
from repro.workloads import run_contention

FIGURE6_VOCAB = (
    "_acquire", "HashSNBBase", "DispatcherDefault_IPCalleeEntry",
    "MemDesc::alloc", "HashSimpleBase", "_wordcopy_fwd_aligned",
    "XHandleTrans::alloc", "DentryListHash::lookupPtr",
    "DirLinuxFS::externalLookupDirectory",
)


@pytest.fixture(scope="module")
def profiled_run():
    kernel, facility, result = run_contention(
        ncpus=8, workers_per_cpu=2, iterations=50,
        pc_sample_period=2_000, with_fs_pressure=True,
    )
    return kernel, facility.decode(), result


def test_fig6_server_histogram(benchmark, profiled_run):
    kernel, trace, _ = profiled_run
    sym = kernel.symbols()
    hist = pc_profile(trace, sym.pc_names, pid=1)
    assert hist, "baseServers must have samples (PPC moves execution there)"
    text = format_profile(
        hist, pid=1, mapped_filename="servers/baseServers/baseServers.dbg",
        top=12,
    )
    write_result("fig6_pcprofile", text)
    names = " ".join(n for _, n in hist)
    overlap = [v for v in FIGURE6_VOCAB if v in names]
    assert len(overlap) >= 3, f"Figure 6 vocabulary too sparse: {overlap}"
    benchmark(lambda: pc_profile(trace, sym.pc_names, pid=1))


def test_fig6_lock_spin_visible_under_contention(benchmark, profiled_run):
    """Under heavy contention, lock-acquire spinning must rank high in
    the whole-system profile, as in the paper's Figure 6."""
    kernel, trace, _ = profiled_run
    sym = kernel.symbols()
    hist = pc_profile(trace, sym.pc_names)
    top8 = [n for _, n in hist[:8]]
    assert any("_acquire" in n for n in top8), top8
    benchmark(lambda: pc_profile(trace, sym.pc_names))


def test_fig6_sample_count_tracks_period(benchmark):
    """Halving the sampling period roughly doubles the sample count —
    the statistical-profiling contract."""
    _, fac_fast, _ = run_contention(ncpus=2, workers_per_cpu=1,
                                    iterations=20, pc_sample_period=2_000)
    _, fac_slow, _ = run_contention(ncpus=2, workers_per_cpu=1,
                                    iterations=20, pc_sample_period=4_000)
    fast = len(pc_profile(fac_fast.decode()))
    n_fast = sum(c for c, _ in pc_profile(fac_fast.decode()))
    n_slow = sum(c for c, _ in pc_profile(fac_slow.decode()))
    assert 1.5 <= n_fast / n_slow <= 2.6
    benchmark(lambda: pc_profile(fac_fast.decode()))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_fig6_pcprofile.py`)
# ---------------------------------------------------------------------------
from functools import lru_cache  # noqa: E402

from repro.perf import benchmark as perf_bench  # noqa: E402


@lru_cache(maxsize=1)
def _profiled(quick):
    if quick:
        kernel, facility, _ = run_contention(
            ncpus=2, workers_per_cpu=1, iterations=20,
            pc_sample_period=2_000)
    else:
        kernel, facility, _ = run_contention(
            ncpus=8, workers_per_cpu=2, iterations=50,
            pc_sample_period=2_000, with_fs_pressure=True)
    return kernel, facility.decode()


@perf_bench("pcprofile.histogram", quick=True, tolerance=0.4)
def hb_histogram(b):
    kernel, trace = _profiled(b.quick)
    sym = kernel.symbols()
    hist = b(lambda: pc_profile(trace, sym.pc_names))
    assert hist
    b.note("samples", sum(c for c, _ in hist))


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
