"""Persistent columnar store: pushed-down queries vs raw re-decode.

The tentpole claim under test: answering a selective predicate (one
CPU, narrow time window) against a packed store touches only the
shards whose manifest statistics overlap the predicate, and is >= 10x
faster than re-decoding the raw trace and filtering — on a trace of at
least 100k events.  The timed comparison asserts the two paths return
identical rows, so the speedup is never bought with a wrong answer.

Also measured for the regression gate: pack throughput and a cold
full-scan query (open manifest, read every shard, reconstitute).
"""

import gc
import os
import time

import numpy as np
import pytest

from _benchutil import write_result
from repro.core.columnar import ColumnarTraceReader, as_batch
from repro.core.registry import default_registry
from repro.core.writer import load_records, save_records
from repro.store import Predicate, TraceStore, pack_records, select
from repro.workloads import run_contention

MIN_PUSHDOWN_SPEEDUP = 10.0
MIN_EVENTS = 100_000


def _timeit(fn, repeats=3):
    """Best-of-N wall time with the GC paused during the timed region."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        finally:
            gc.enable()
    gc.collect()
    return best, result


def _build(out_dir, ncpus=8, iterations=120, pc_sample_period=500,
           buffer_words=1024, num_buffers=128, shard_events=2048):
    """A many-buffer contention trace, saved raw and packed.

    The small ``buffer_words`` forces dozens of buffers per CPU, so the
    store has enough shards for statistics pruning to matter;
    ``num_buffers`` keeps total capacity high enough for >= 100k events.
    """
    _kernel, facility, _ = run_contention(
        ncpus=ncpus, workers_per_cpu=2, iterations=iterations,
        pc_sample_period=pc_sample_period, buffer_words=buffer_words,
        num_buffers=num_buffers)
    records = facility.snapshot()
    trace_path = os.path.join(out_dir, "trace.k42")
    save_records(trace_path, records)
    store_path = os.path.join(out_dir, "trace.store")
    pack_records(records, store_path, shard_events=shard_events)
    return trace_path, store_path


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    return _build(str(tmp_path_factory.mktemp("store_bench")))


def _span_seconds(store):
    return max(i.stats.time_max for i in store.shards) / 1e9


def _row_key(batch, order):
    return list(zip(batch.cpu[order].tolist(), batch.seq[order].tolist(),
                    batch.offset[order].tolist()))


def test_store_pushdown_speedup(benchmark, workload):
    """cpu + time-window predicate: >= 10x over raw re-decode, identical
    rows, and only the overlapping shards read."""
    trace_path, store_path = workload
    store = TraceStore(store_path)
    assert store.events >= MIN_EVENTS, \
        f"workload too small for the claim: {store.events} events"
    span = _span_seconds(store)
    pred = Predicate(cpus=(3,), start_s=span * 0.45, end_s=span * 0.50)
    reg = default_registry()

    def raw_filter():
        records = load_records(trace_path)
        trace = ColumnarTraceReader(registry=reg).decode_records(records)
        b = as_batch(trace)
        idx = np.flatnonzero(select(b, pred))
        return _row_key(b, idx)

    def pushed():
        st = TraceStore(store_path)  # cold: manifest + shards each time
        qr = st.query(pred)
        return qr, _row_key(qr.batch, qr.batch.order_by_time())

    t_raw, ref = _timeit(raw_filter)
    t_push, (qr, got) = _timeit(pushed)
    assert sorted(got) == sorted(ref), "pushdown returned different rows"
    assert len(got) > 0, "predicate matched nothing; bench is vacuous"
    assert qr.shards_read < qr.shards_total, \
        "statistics pruned nothing; shard cutting is broken"
    speedup = t_raw / t_push
    assert speedup >= MIN_PUSHDOWN_SPEEDUP, (
        f"pushdown only {speedup:.1f}x over raw re-decode "
        f"({t_raw * 1e3:.1f}ms -> {t_push * 1e3:.1f}ms)")

    write_result("store_pushdown", "\n".join([
        f"predicate pushdown over {store.events} events, "
        f"{qr.shards_total} shards",
        f"{'path':<28} {'time':>10} {'shards':>7} {'rows':>8}",
        f"{'raw re-decode + filter':<28} {t_raw * 1e3:>8.1f}ms "
        f"{qr.shards_total:>7} {store.events:>8}",
        f"{'store query (pushdown)':<28} {t_push * 1e3:>8.1f}ms "
        f"{qr.shards_read:>7} {qr.rows_scanned:>8}",
        f"speedup: {speedup:.1f}x  matched rows: {len(got)}",
    ]))
    benchmark(lambda: TraceStore(store_path).query(pred))


def test_store_roundtrip_not_slower_than_decode(workload):
    """Reconstituting the full trace from the store must stay within 2x
    of a raw columnar decode (it skips scanning, but pays npz inflate)."""
    trace_path, store_path = workload
    reg = default_registry()
    records = load_records(trace_path)
    t_decode, fresh = _timeit(
        lambda: ColumnarTraceReader(registry=reg).decode_records(records))
    t_store, again = _timeit(lambda: TraceStore(store_path).trace())
    assert len(as_batch(again)) == len(as_batch(fresh))
    assert t_store <= 2.0 * t_decode, (
        f"store reconstitution {t_store * 1e3:.1f}ms vs decode "
        f"{t_decode * 1e3:.1f}ms")


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_store.py`)
# ---------------------------------------------------------------------------
import tempfile  # noqa: E402
from functools import lru_cache  # noqa: E402

from repro.perf import benchmark as perf_bench  # noqa: E402


@lru_cache(maxsize=1)
def _harness_workload(quick):
    out_dir = tempfile.mkdtemp(prefix="repro-store-bench-")
    if quick:
        return _build(out_dir, ncpus=4, iterations=60,
                      pc_sample_period=1_000, shard_events=1024)
    return _build(out_dir)


@perf_bench("store.pack", quick=True, tolerance=0.4)
def hb_pack(b):
    """Decode + compact + compress + manifest, end to end."""
    trace_path, store_path = _harness_workload(b.quick)
    records = load_records(trace_path)
    res = b(lambda: pack_records(records, store_path, shard_events=1024,
                                 force=True))
    b.note("events", res.events)
    b.note("shards", res.shards)


@perf_bench("store.query_cold", quick=True, tolerance=0.4)
def hb_query_cold(b):
    """Full-scan query: open the manifest and read every shard."""
    _, store_path = _harness_workload(b.quick)
    qr = b(lambda: TraceStore(store_path).query(Predicate()))
    b.note("rows", len(qr))


@perf_bench("store.query_pushdown", quick=True, tolerance=0.4)
def hb_query_pushdown(b):
    """Selective cpu + time-window query; statistics skip most shards."""
    _, store_path = _harness_workload(b.quick)
    store = TraceStore(store_path)
    span = _span_seconds(store)
    pred = Predicate(cpus=(1,), start_s=span * 0.4, end_s=span * 0.5)
    qr = b(lambda: TraceStore(store_path).query(pred))
    b.note("rows", len(qr))
    b.note("shards_read", qr.shards_read)
    b.note("shards_total", qr.shards_total)


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
