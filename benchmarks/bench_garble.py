"""§3.1: garbled-buffer probability and detection.

Paper claims: (a) a writer interrupted between reserve and log can
garble a buffer; (b) for scientific applications running one thread per
processor such errors never occur; (c) the per-buffer committed counts
and header validity checks detect the damage; (d) "We have run entire
benchmark suites without incurring any errors."

Reproduction: failure injection on the real lockless logger — writers
that reserve and then die (or stall a full ring lap) at a configurable
rate — versus clean runs of the scientific and SDET workloads; measure
detection rate and residual stream usability.
"""

import random


from _benchutil import write_result
from repro.core.buffers import TraceControl
from repro.core.logger import TraceLogger
from repro.core.majors import Major
from repro.core.mask import TraceMask
from repro.core.registry import default_registry
from repro.core.stream import TraceReader
from repro.core.timestamps import ManualClock
from repro.workloads import run_scientific, run_sdet


def injected_run(kill_rate: float, n_events: int = 4_000, seed: int = 3):
    """Log ``n_events``; a ``kill_rate`` fraction of writers die after
    reserving (never write, never commit).  Returns the decoded trace
    and the number of injected kills."""
    control = TraceControl(buffer_words=128, num_buffers=8, zero_ahead=True)
    mask = TraceMask()
    mask.enable_all()
    clock = ManualClock()
    logger = TraceLogger(control, mask, clock, registry=default_registry())
    logger.start()
    rng = random.Random(seed)
    kills = 0
    for i in range(n_events):
        clock.advance(7)
        if rng.random() < kill_rate:
            logger._reserve(2)  # reserve ... and the process is killed
            kills += 1
        else:
            logger.log1(Major.TEST, 1, i)
    reader = TraceReader(registry=default_registry())
    trace = reader.decode_records(control.flush())
    return trace, kills


def test_garble_injection_detected(benchmark):
    rows = ["garble injection on the lockless logger "
            "(4000 events, 128-word buffers)",
            f"{'kill rate':>10} {'kills':>6} {'anomalies':>10} "
            f"{'buffers flagged':>16} {'events recovered':>17}"]
    for rate in (0.0, 0.001, 0.01, 0.05):
        trace, kills = injected_run(rate)
        flagged = {(a.cpu, a.seq) for a in trace.anomalies}
        recovered = len([e for e in trace.events(0)
                         if e.major == Major.TEST])
        rows.append(f"{rate:>10} {kills:>6} {len(trace.anomalies):>10} "
                    f"{len(flagged):>16} {recovered:>17}")
        if rate == 0.0:
            assert not trace.anomalies, "clean run must verify clean"
        if kills:
            assert trace.anomalies, "injected damage must be detected"
            assert recovered > 0, "the rest of the stream must survive"
    write_result("garble_injection", "\n".join(rows))
    benchmark(lambda: injected_run(0.01, n_events=1_000))


def test_scientific_workload_never_garbles(benchmark):
    """One thread per CPU: the paper's 'such errors will not occur'."""
    kernel, facility, _ = run_scientific(ncpus=4, phases=4,
                                         phase_cycles=500_000)
    trace = facility.decode()
    assert not trace.anomalies
    write_result(
        "garble_scientific",
        f"scientific workload (1 thread/CPU): "
        f"{len(trace.all_events())} events, {len(trace.anomalies)} anomalies\n"
        "paper: for such applications garbling errors will not occur",
    )
    benchmark(lambda: facility.decode())


def test_benchmark_suite_clean(benchmark):
    """'We have run entire benchmark suites without incurring any
    errors' — the SDET suite decodes clean."""
    kernel, facility, _ = run_sdet(4, scripts_per_cpu=2,
                                   commands_per_script=4)
    trace = facility.decode()
    assert not trace.anomalies
    write_result(
        "garble_sdet",
        f"SDET run: {len(trace.all_events())} events, "
        f"{len(trace.anomalies)} anomalies",
    )
    benchmark(lambda: facility.decode())


def test_random_garbage_rarely_parses(benchmark):
    """'It is unlikely that random data will have the correct format of
    a trace event header' — quantify the false-acceptance rate of the
    validity heuristics on uniformly random buffers."""
    from repro.core.buffers import BufferRecord
    import numpy as np

    rng = np.random.default_rng(7)
    # Strict mode: stop at the first garble, so "events accepted" counts
    # how far random data masquerades as a stream before detection.
    reader = TraceReader(registry=default_registry(), strict=True)
    n_buffers = 200
    bw = 128
    accepted_events = 0
    flagged = 0
    for k in range(n_buffers):
        words = rng.integers(0, 2**64, size=bw, dtype=np.uint64)
        rec = BufferRecord(cpu=0, seq=k, words=words, committed=bw,
                           fill_words=bw)
        anomalies = []
        events = reader.decode_buffer(rec, anomalies)
        accepted_events += len(events)
        flagged += bool(anomalies)
    avg = accepted_events / n_buffers
    write_result(
        "garble_random_data",
        f"{n_buffers} random 128-word buffers: {flagged} flagged as "
        f"garbled,\naverage {avg:.2f} plausible events accepted per "
        "buffer before detection\n"
        "paper: with high probability errors are detected because random\n"
        "data rarely forms a valid header sequence",
    )
    assert flagged / n_buffers > 0.95
    assert avg < 8
    benchmark(lambda: reader.decode_buffer(
        BufferRecord(cpu=0, seq=0,
                     words=rng.integers(0, 2**64, size=bw, dtype=np.uint64),
                     committed=bw, fill_words=bw),
        [],
    ))


def test_recovery_salvage_rate(benchmark):
    """How much of a damaged trace does in-buffer resynchronization save?

    For each fault kind the injector can produce, compare events decoded
    in strict (stop-at-first-garble, the paper's minimal recovery) mode
    against the default resynchronizing decoder.
    """
    from repro.core.faults import RECORD_KINDS, FaultInjector
    from repro.workloads import run_multiprog

    _, facility, _ = run_multiprog(ncpus=2, jobs_per_cpu=3, seed=11)
    records = facility.flush()
    reg = default_registry()
    baseline = len(TraceReader(registry=reg).decode_records(
        records).all_events())
    rows = [f"recovery salvage on injected damage ({baseline} clean events)",
            f"{'fault kind':>16} {'strict events':>14} "
            f"{'recovered events':>17} {'salvaged':>9}"]
    for kind in RECORD_KINDS:
        damaged, _report = FaultInjector(11).inject_records(records, kind)
        n_strict = len(TraceReader(registry=reg, strict=True)
                       .decode_records(damaged).all_events())
        n_loose = len(TraceReader(registry=reg)
                      .decode_records(damaged).all_events())
        assert n_loose >= n_strict
        rows.append(f"{kind:>16} {n_strict:>14} {n_loose:>17} "
                    f"{n_loose - n_strict:>9}")
    write_result("garble_recovery_salvage", "\n".join(rows))
    damaged, _ = FaultInjector(11).inject_records(records, "torn-event")
    reader = TraceReader(registry=reg)
    benchmark(lambda: reader.decode_records(damaged))


# ---------------------------------------------------------------------------
# Unified-harness registrations (`repro-trace bench`; `python bench_garble.py`)
# ---------------------------------------------------------------------------
from repro.perf import benchmark as perf_bench  # noqa: E402


@perf_bench("garble.injected_decode", quick=True, tolerance=0.4)
def hb_injected_decode(b):
    """Log + decode with 1% of writers dying between reserve and commit."""
    n = 1_000 if b.quick else 4_000
    b.note("n_events", n)
    trace, kills = b(lambda: injected_run(0.01, n_events=n))
    assert kills == 0 or trace.anomalies


@perf_bench("garble.random_buffer_reject", quick=True, tolerance=0.4)
def hb_random_reject(b):
    """Strict-mode rejection speed on uniformly random buffers (§3.1)."""
    import numpy as np

    from repro.core.buffers import BufferRecord

    rng = np.random.default_rng(7)
    bw = 128
    rec = BufferRecord(cpu=0, seq=0,
                       words=rng.integers(0, 2**64, size=bw,
                                          dtype=np.uint64),
                       committed=bw, fill_words=bw)
    reader = TraceReader(registry=default_registry(), strict=True)
    b(lambda: reader.decode_buffer(rec, []))


if __name__ == "__main__":
    import sys

    from repro.perf import module_main

    sys.exit(module_main(__name__))
